"""Fault-aware single-router simulation harness.

:class:`FaultySingleRouterSim` extends the healthy
:class:`~repro.sim.simulation.SingleRouterSim` cycle loop with the full
robustness stack:

* the :class:`~repro.faults.FaultInjector` perturbs credit returns, NIC
  link transfers and VC buffer slots, and can kill an output port
  mid-run;
* detection/recovery runs inline — CRC NACK-and-retransmit on the NIC
  link, :class:`~repro.router.credits.CreditWatchdog` resyncs (escalating
  to connection teardown + re-admission when retries are exhausted), and
  dead-port victims re-admitted on surviving output ports with their NIC
  backlog migrated to the new virtual channel;
* the :class:`~repro.faults.DegradationPolicy` sheds load in QoS order
  (best-effort first, then the VBR peak allowance; CBR untouched) by
  masking NIC eligibility, so already-buffered flits still drain and the
  router cannot livelock on shed traffic;
* the :class:`~repro.faults.SimWatchdog` asserts flit conservation and
  aborts livelocked runs with a router-state dump instead of hanging.

Determinism: all fault randomness comes from the dedicated ``"faults"``
RNG stream, drawn at fixed decision points, so the same seed + config
reproduces the exact :class:`~repro.faults.FaultSchedule` byte for byte
and the exact :class:`~repro.sim.simulation.SimResult`.
"""

from __future__ import annotations

import numpy as np

from ..core.matching import Arbiter
from ..core.priorities import PriorityScheme
from ..router.config import RouterConfig
from ..router.connection import Connection, TrafficClass
from ..router.credits import CreditWatchdog
from ..sessions.signaling import readmit_elsewhere
from ..sim.engine import RunControl
from ..sim.metrics import FaultCounters, MetricsCollector
from ..sim.simulation import (
    SimResult,
    SingleRouterSim,
    native_feeds,
    next_injection_cycle,
)
from ..traffic.mixes import Workload
from .degradation import (
    LEVEL_CLAMP_VBR_PEAK,
    LEVEL_SHED_BEST_EFFORT,
    DegradationPolicy,
)
from .injector import CREDIT_DUP, CREDIT_LOST, FaultInjector
from .models import FaultConfig, FaultKind
from .schedule import FaultSchedule
from .watchdog import SimWatchdog

__all__ = ["FaultySingleRouterSim"]


class FaultySingleRouterSim(SingleRouterSim):
    """Single-router testbed with fault injection, recovery and shedding."""

    def __init__(
        self,
        config: RouterConfig,
        arbiter: Arbiter | str = "coa",
        scheme: PriorityScheme | str = "siabp",
        seed: int = 0,
        faults: FaultConfig | None = None,
        skip_idle: bool = False,
    ) -> None:
        super().__init__(config, arbiter, scheme, seed, skip_idle=skip_idle)
        cfg = faults if faults is not None else FaultConfig()
        if cfg.dead_port is not None and cfg.dead_port >= config.num_ports:
            raise ValueError(
                f"dead_port {cfg.dead_port} out of range for "
                f"{config.num_ports} ports"
            )
        self.fault_config = cfg
        self.schedule = FaultSchedule()
        self.counters = FaultCounters()
        self.degradation = DegradationPolicy(cfg, self.schedule)
        self.injector = FaultInjector(
            cfg, self.rng.faults, self.schedule, self.counters, self.degradation
        )
        self.credit_watchdog = CreditWatchdog(
            self.router.credits,
            timeout=cfg.resync_timeout,
            max_retries=cfg.resync_max_retries,
            backoff=cfg.resync_backoff,
        )
        self.sim_watchdog = SimWatchdog(
            self.router, self.schedule, cfg.stall_limit, cfg.check_interval
        )
        self.router.credits.on_duplicate_discard = self._on_duplicate_discard
        #: Output port taken down by the structural fault, once active.
        self.dead_port: int | None = None
        # (port, original_vc) -> current vc after re-admission, or None
        # when the connection could not be re-admitted (flits dropped).
        self._redirect: dict[tuple[int, int], int | None] = {}
        # (port, current_vc) -> original workload vc (redirect bookkeeping
        # across repeated teardown/re-admission of the same connection).
        self._orig_of: dict[tuple[int, int], int] = {}
        n, v = config.num_ports, config.vcs_per_link
        # VBR peak clamp: per-round token buckets refilled to avg_slots.
        self._tokens = np.zeros((n, v), dtype=np.int64)
        self._be_bits = [0] * n
        self._vbr_bits = [0] * n
        self._vbr_vcs: list[list[int]] = [[] for _ in range(n)]
        # Flits discarded after entering a NIC (conservation accounting).
        self._conserved_drops = 0
        # Active telemetry session while run() is in flight (recovery
        # paths must tell it about re-admitted connections).
        self._telemetry = None
        # Active session engine while run(sessions=...) is in flight
        # (recovery paths notify it about torn-down connections).
        self._engine = None

    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------

    def run(
        self, workload: Workload, control: RunControl, telemetry=None,
        sessions=None,
    ) -> SimResult:
        if sessions is not None:
            return self._run_sessions_faulty(
                workload, control, sessions, telemetry
            )
        router = self.router
        config = self.config
        cfg = self.fault_config
        feeds = native_feeds(
            workload.build_feeds(control.cycles, self.rng.sources)
        )
        labels = workload.labels_by_conn()
        conn_of_vc = {
            (item.conn.in_port, item.conn.vc): item.conn.conn_id
            for item in workload.loads
        }
        metrics = MetricsCollector(
            config, labels, conn_of_vc, measure_from=control.warmup_cycles
        )
        self._telemetry = telemetry
        if telemetry is not None:
            telemetry.begin(router, workload, metrics, control)
            self.sim_watchdog.on_trip = telemetry.on_watchdog_trip
        arb_rng = self.rng.arbiter
        credits = router.credits
        vc_memory = router.vc_memory
        occupancy = vc_memory.occupancy
        scheme_stateful = router.scheme_stateful
        pointers = [0] * config.num_ports
        counters_reset = control.warmup_cycles == 0
        if counters_reset:
            router.crossbar.reset_counters()
        self._refresh_classes()
        round_cycles = config.round_cycles
        injected = 0
        departed = 0
        # Skipping is only safe when the fault config can never fire (no
        # per-opportunity draws, no dead port); any live fault machinery
        # disables it for the whole run.  Token-bucket refills at round
        # boundaries clamp the fast-forward target below.
        tel_next = (
            getattr(telemetry, "next_event_cycle", None)
            if telemetry is not None
            else None
        )
        skipping = (
            self.skip_idle
            and cfg.is_inert
            and (telemetry is None or tel_next is not None)
        )
        end = control.cycles
        next_due = next_injection_cycle(feeds, pointers, end)

        now = 0
        while now < end:
            if not counters_reset and now >= control.warmup_cycles:
                router.crossbar.reset_counters()
                counters_reset = True
            if now % round_cycles == 0:
                # New bandwidth round: refill the VBR token buckets.
                np.copyto(self._tokens, router._slots)
            if (
                cfg.dead_port is not None
                and self.dead_port is None
                and now >= cfg.dead_port_cycle
            ):
                self._activate_dead_port(now, metrics, labels)
            # 1. Source injection into the NICs (through the redirect map
            #    once recovery has moved connections to new VCs).
            if now >= next_due:
                injected += self._inject_faulty(feeds, pointers, now)
                next_due = next_injection_cycle(feeds, pointers, end)
            # 2. Buffer faults, credit landing, counter watchdog.
            self.injector.step_stuck(now, occupancy)
            credits.deliver(now)
            for action, port, vc, delta in self.credit_watchdog.scan(
                now, occupancy
            ):
                self._on_watchdog_event(
                    now, action, port, vc, delta, metrics, labels
                )
            # 3. Degradation level for this cycle's NIC eligibility.
            level = self.degradation.update(now)
            # 4. Link + switch scheduling and crossbar transfer.
            candidates = self._filter_candidates(router._link_schedule(now))
            grants = router.arbiter.match(candidates, arb_rng)
            departures = router.crossbar.transfer(grants, vc_memory, now)
            if scheme_stateful and departures:
                router.notify_service(departures, now)
            for dep in departures:
                fate = self.injector.credit_fate(now, dep.in_port, dep.vc)
                if fate == CREDIT_LOST:
                    credits.fault_lose(dep.in_port, dep.vc)
                else:
                    credits.schedule_return(dep.in_port, dep.vc, now)
                    if fate == CREDIT_DUP:
                        credits.fault_duplicate(dep.in_port, dep.vc, now)
                metrics.record(dep, now)
            if departures:
                departed += len(departures)
                self.sim_watchdog.note_progress(now)
            if telemetry is not None:
                telemetry.on_cycle(now, departures)
            # 5. NIC link transfer under shedding + CRC check.
            self._accept_with_faults(now, level)
            # 6. Conservation / livelock sweep.
            self.sim_watchdog.check(now, injected, departed, self._conserved_drops)
            now += 1
            # 7. Idle fast-forward (inert fault config only): jump to the
            #    next injection, token-refill round or telemetry sample.
            if skipping and next_due > now and router.is_idle():
                target = next_due
                next_round = now + (-now % round_cycles)
                if next_round < target:
                    target = next_round
                if tel_next is not None:
                    tel_cycle = tel_next(now)
                    if tel_cycle < target:
                        target = tel_cycle
                if target > now:
                    counters_reset = self._fast_forward(
                        now, target, control, counters_reset
                    )
                    now = target

        if not counters_reset:
            router.crossbar.reset_counters()
        result = self._summarize(workload, control, metrics)
        counters = self.counters
        counters.duplicates_discarded = credits.duplicates_discarded
        counters.credit_resyncs = credits.resyncs
        counters.degradation_escalations = self.degradation.escalations
        counters.max_degradation_level = self.degradation.max_level
        result.fault = counters.as_dict()
        result.degradation_level = self.degradation.max_level
        if telemetry is not None:
            telemetry.finish(result)
            self._telemetry = None
        return result

    def _run_sessions_faulty(
        self, workload: Workload, control: RunControl, engine, telemetry
    ) -> SimResult:
        """Faulty twin of the sessions loop (same pattern as telemetry).

        Identical to :meth:`run` plus the session-engine hooks at the
        same points the healthy ``_run_sessions`` loop places them; when
        the engine carries a control plane, its recovery controller is
        attached to the degradation policy for the duration of the run.
        """
        router = self.router
        config = self.config
        cfg = self.fault_config
        feeds = native_feeds(
            workload.build_feeds(control.cycles, self.rng.sources)
        )
        labels = workload.labels_by_conn()
        conn_of_vc = {
            (item.conn.in_port, item.conn.vc): item.conn.conn_id
            for item in workload.loads
        }
        metrics = MetricsCollector(
            config, labels, conn_of_vc, measure_from=control.warmup_cycles
        )
        self._telemetry = telemetry
        if telemetry is not None:
            telemetry.begin(router, workload, metrics, control)
            self.sim_watchdog.on_trip = telemetry.on_watchdog_trip
        engine.begin(router, workload, metrics, control, telemetry=telemetry)
        self._engine = engine
        if engine.control_plane is not None:
            self.degradation.controller = engine.control_plane.recovery
        arb_rng = self.rng.arbiter
        credits = router.credits
        vc_memory = router.vc_memory
        occupancy = vc_memory.occupancy
        scheme_stateful = router.scheme_stateful
        pointers = [0] * config.num_ports
        counters_reset = control.warmup_cycles == 0
        if counters_reset:
            router.crossbar.reset_counters()
        self._refresh_classes()
        round_cycles = config.round_cycles
        injected = 0
        departed = 0
        # Same gating as :meth:`run`, plus the session engine must expose
        # its next-event times; an attached control plane keeps per-cycle
        # recovery state on the degradation policy, so it disables
        # skipping outright.
        tel_next = (
            getattr(telemetry, "next_event_cycle", None)
            if telemetry is not None
            else None
        )
        eng_next = getattr(engine, "next_event_cycle", None)
        skipping = (
            self.skip_idle
            and cfg.is_inert
            and engine.control_plane is None
            and eng_next is not None
            and (telemetry is None or tel_next is not None)
        )
        end = control.cycles
        next_due = next_injection_cycle(feeds, pointers, end)

        now = 0
        while now < end:
            if not counters_reset and now >= control.warmup_cycles:
                router.crossbar.reset_counters()
                counters_reset = True
            if now % round_cycles == 0:
                np.copyto(self._tokens, router._slots)
                # Churn admits/releases connections between rounds: keep
                # the shed masks in sync with the live table.
                self._refresh_classes()
            if (
                cfg.dead_port is not None
                and self.dead_port is None
                and now >= cfg.dead_port_cycle
            ):
                self._activate_dead_port(now, metrics, labels)
            # 0. Session lifecycle (signaling, arrivals, drains).
            engine.on_cycle(now)
            # 1. Source injection into the NICs.
            if now >= next_due:
                injected += self._inject_faulty(feeds, pointers, now)
                next_due = next_injection_cycle(feeds, pointers, end)
            injected += engine.inject(now)
            # 2. Buffer faults, credit landing, counter watchdog.
            self.injector.step_stuck(now, occupancy)
            credits.deliver(now)
            for action, port, vc, delta in self.credit_watchdog.scan(
                now, occupancy
            ):
                self._on_watchdog_event(
                    now, action, port, vc, delta, metrics, labels
                )
            # 3. Degradation level for this cycle's NIC eligibility.
            level = self.degradation.update(now)
            # 4. Link + switch scheduling and crossbar transfer.
            candidates = self._filter_candidates(router._link_schedule(now))
            grants = router.arbiter.match(candidates, arb_rng)
            departures = router.crossbar.transfer(grants, vc_memory, now)
            if scheme_stateful and departures:
                router.notify_service(departures, now)
            for dep in departures:
                fate = self.injector.credit_fate(now, dep.in_port, dep.vc)
                if fate == CREDIT_LOST:
                    credits.fault_lose(dep.in_port, dep.vc)
                else:
                    credits.schedule_return(dep.in_port, dep.vc, now)
                    if fate == CREDIT_DUP:
                        credits.fault_duplicate(dep.in_port, dep.vc, now)
                metrics.record(dep, now)
            engine.on_departures(now, departures)
            if departures:
                departed += len(departures)
                self.sim_watchdog.note_progress(now)
            if telemetry is not None:
                telemetry.on_cycle(now, departures)
            # 5. NIC link transfer under shedding + CRC check.
            self._accept_with_faults(now, level)
            # 6. Conservation / livelock sweep.
            self.sim_watchdog.check(now, injected, departed, self._conserved_drops)
            now += 1
            # 7. Idle fast-forward (inert config, no control plane): jump
            #    to the next injection, signaling event, refill round or
            #    telemetry sample.
            if skipping and next_due > now and router.is_idle():
                target = next_due
                eng_cycle = eng_next(now)
                if eng_cycle < target:
                    target = eng_cycle
                next_round = now + (-now % round_cycles)
                if next_round < target:
                    target = next_round
                if tel_next is not None:
                    tel_cycle = tel_next(now)
                    if tel_cycle < target:
                        target = tel_cycle
                if target > now:
                    counters_reset = self._fast_forward(
                        now, target, control, counters_reset
                    )
                    now = target

        if not counters_reset:
            router.crossbar.reset_counters()
        engine.finish()
        result = self._summarize(workload, control, metrics)
        counters = self.counters
        counters.duplicates_discarded = credits.duplicates_discarded
        counters.credit_resyncs = credits.resyncs
        counters.degradation_escalations = self.degradation.escalations
        counters.max_degradation_level = self.degradation.max_level
        result.fault = counters.as_dict()
        result.degradation_level = self.degradation.max_level
        self._engine = None
        self.degradation.controller = None
        if telemetry is not None:
            telemetry.finish(result)
            self._telemetry = None
        return result

    # ------------------------------------------------------------------
    # Scheduling and link-transfer hooks
    # ------------------------------------------------------------------

    def _inject_faulty(self, feeds, pointers, now: int) -> int:
        """Redirect-aware twin of :func:`~repro.sim.simulation.inject_due_flits`.

        One shared walk for both faulty cycle loops: feeds route through
        the recovery redirect map (connections re-admitted on new VCs, or
        dropped entirely).  Returns the number of flits actually
        deposited, feeding the watchdog's conservation ledger.
        """
        nics = self.router.nics
        redirect = self._redirect
        counters = self.counters
        injected = 0
        for port, feed in enumerate(feeds):
            ptr = pointers[port]
            cycles = feed.cycles
            end = len(cycles)
            if ptr >= end or cycles[ptr] > now:
                continue
            nic = nics[port]
            while ptr < end and cycles[ptr] <= now:
                vc: int | None = int(feed.vcs[ptr])
                if redirect:
                    vc = redirect.get((port, vc), vc)
                if vc is None:
                    # Connection was dropped: its source traffic has
                    # nowhere to go.
                    counters.flits_dropped += 1
                else:
                    nic.inject(
                        vc,
                        int(cycles[ptr]),
                        int(feed.frame_ids[ptr]),
                        bool(feed.frame_last[ptr]),
                    )
                    injected += 1
                ptr += 1
            pointers[port] = ptr
        return injected

    def _filter_candidates(self, candidates):
        """Drop candidates through the dead port or a stuck buffer slot."""
        injector = self.injector
        if self.dead_port is None and not injector.has_stuck:
            return candidates
        dead = self.dead_port
        filtered = []
        for port_cands in candidates:
            keep = [
                c
                for c in port_cands
                if c.out_port != dead and not injector.is_stuck(c.in_port, c.vc)
            ]
            if len(keep) != len(port_cands):
                # Re-level after filtering so the arbiter sees dense levels.
                keep = [
                    type(c)(c.in_port, c.vc, c.out_port, c.priority, lvl)
                    for lvl, c in enumerate(keep)
                ]
            filtered.append(keep)
        return filtered

    def _accept_with_faults(self, now: int, level: int) -> None:
        """NIC link transfer under degradation masking and CRC checking."""
        router = self.router
        credits = router.credits
        tokens = self._tokens
        for port, nic in enumerate(router.nics):
            eligible = credits.mask_for(port)
            if level >= LEVEL_SHED_BEST_EFFORT:
                eligible &= ~self._be_bits[port]
            if level >= LEVEL_CLAMP_VBR_PEAK and self._vbr_bits[port]:
                blocked = 0
                for vc in self._vbr_vcs[port]:
                    if tokens[port, vc] <= 0:
                        blocked |= 1 << vc
                eligible &= ~blocked
            vc = nic.select(eligible)
            if vc < 0:
                continue
            flit = nic.peek(vc)
            assert flit is not None
            if self.injector.corrupts(now, port, vc, flit):
                # CRC mismatch -> NACK: the flit stays at the head of its
                # NIC queue and is retransmitted (this link cycle is
                # wasted); no credit is consumed for the corrupt copy.
                self.counters.retransmissions += 1
                self.schedule.record(
                    now, FaultKind.RETRANSMIT, f"port={port} vc={vc}"
                )
                continue
            nic.pop(vc)
            credits.consume(port, vc)
            router.vc_memory.push(port, vc, flit[0], flit[1], flit[2], now)
            if (self._vbr_bits[port] >> vc) & 1:
                tokens[port, vc] -= 1

    # ------------------------------------------------------------------
    # Detection / recovery plumbing
    # ------------------------------------------------------------------

    def _on_duplicate_discard(self, port: int, vc: int, now: int) -> None:
        self.schedule.record(now, FaultKind.DUP_DISCARD, f"port={port} vc={vc}")

    def _on_watchdog_event(
        self,
        now: int,
        action: str,
        port: int,
        vc: int,
        delta: int,
        metrics: MetricsCollector,
        labels: dict[int, str],
    ) -> None:
        where = f"port={port} vc={vc}"
        if action == "surplus_resync":
            self.schedule.record(now, FaultKind.CREDIT_SURPLUS, where)
            self.schedule.record(
                now, FaultKind.CREDIT_RESYNC, where, f"delta={delta}"
            )
            return
        if action == "deficit_resync":
            self.schedule.record(now, FaultKind.CREDIT_DEFICIT, where)
            self.schedule.record(
                now, FaultKind.CREDIT_RESYNC, where, f"delta={delta}"
            )
            return
        # Give-up: bounded retries exhausted; escalate to teardown and
        # re-admission of whatever connection holds the sick VC.
        self.schedule.record(now, FaultKind.RESYNC_GIVEUP, where)
        self.counters.resync_giveups += 1
        conn = self.router.table.at_vc(port, vc)
        if conn is not None:
            self._teardown_and_readmit(
                now, conn, metrics, labels, reason="credit_giveup"
            )
            self._refresh_classes()

    def _activate_dead_port(
        self, now: int, metrics: MetricsCollector, labels: dict[int, str]
    ) -> None:
        """Structural fault: one output port dies for the rest of the run."""
        port = self.fault_config.dead_port
        assert port is not None
        victims = self.router.table.on_output(port)
        self.schedule.record(
            now,
            FaultKind.DEAD_PORT,
            f"out_port={port}",
            f"connections={len(victims)}",
        )
        self.counters.injected_dead_port += 1
        self.degradation.note_fault(now)
        self.dead_port = port
        if self._engine is not None:
            self._engine.on_dead_port(now, port)
        for conn in victims:
            self._teardown_and_readmit(now, conn, metrics, labels, "dead_port")
        self._refresh_classes()
        # A dead link is a standing capacity loss: keep best-effort shed
        # for as long as it persists (it never recovers in this model).
        self.degradation.set_floor(LEVEL_SHED_BEST_EFFORT, now)

    def _teardown_and_readmit(
        self,
        now: int,
        conn: Connection,
        metrics: MetricsCollector,
        labels: dict[int, str],
        reason: str,
    ) -> Connection | None:
        """Tear one connection down and try to re-admit it elsewhere.

        The NIC backlog migrates to the new virtual channel; router-buffered
        flits are unrecoverable (their slots may be corrupt or their path
        dead) and are dropped.  Returns the re-admitted connection, or
        ``None`` when no output port can accept the reservation.
        """
        router = self.router
        engine = self._engine
        # Session-engine connections track their own (port, vc) through
        # on_conn_recovered; the redirect map is for static feeds only.
        owned = engine is not None and engine.owns(conn.conn_id)
        port, vc = conn.in_port, conn.vc
        orig = self._orig_of.pop((port, vc), vc)
        backlog = router.nics[port].drain(vc)
        _, dropped = router.force_teardown(conn.conn_id, restore_credits=False)
        router.credits.reset_vc(port, vc)
        self.credit_watchdog.reset(port, vc)
        self._conserved_drops += dropped
        self.counters.flits_dropped += dropped
        self.counters.teardowns += 1
        self.schedule.record(
            now,
            FaultKind.TEARDOWN,
            f"port={port} vc={vc}",
            f"conn={conn.conn_id} reason={reason} dropped={dropped}",
        )
        # Re-admission goes through the shared signaling primitive — i.e.
        # through AdmissionController.check/commit inside establish —
        # never around it; the audit below proves the ledgers and the
        # connection table still agree after the whole recovery.
        result = readmit_elsewhere(router, conn, avoid_out_port=self.dead_port)
        if result.accepted:
            new = result.connection
            assert new is not None
            router.nics[port].requeue(new.vc, backlog)
            if owned:
                label = engine.label_of(conn.conn_id)
            else:
                self._redirect[(port, orig)] = new.vc
                self._orig_of[(port, new.vc)] = orig
                label = labels.get(conn.conn_id, "unlabelled")
            metrics.register_connection(port, new.vc, new.conn_id, label)
            if self._telemetry is not None:
                self._telemetry.register_connection(new, label)
            if new.traffic_class is TrafficClass.VBR:
                # Fresh token allotment for the remainder of this round.
                self._tokens[port, new.vc] = new.avg_slots
            self.counters.readmitted += 1
            self.schedule.record(
                now,
                FaultKind.READMIT,
                f"port={port} vc={new.vc}",
                f"conn={new.conn_id} out_port={new.out_port}",
            )
            router.admission.audit(router.table)
            if engine is not None:
                engine.on_conn_recovered(now, conn, new)
            return new
        # No surviving port can take the reservation: the connection is
        # lost, along with its migrated NIC backlog.
        if not owned:
            self._redirect[(port, orig)] = None
        self._conserved_drops += len(backlog)
        self.counters.flits_dropped += len(backlog)
        self.counters.connections_dropped += 1
        self.schedule.record(
            now,
            FaultKind.CONN_DROPPED,
            f"port={port} vc={vc}",
            f"conn={conn.conn_id} backlog={len(backlog)}",
        )
        router.admission.audit(router.table)
        if engine is not None:
            engine.on_conn_recovered(now, conn, None)
        return None

    def _refresh_classes(self) -> None:
        """Rebuild the per-port traffic-class masks from the live table."""
        n = self.config.num_ports
        self._be_bits = [0] * n
        self._vbr_bits = [0] * n
        self._vbr_vcs = [[] for _ in range(n)]
        for conn in self.router.table:
            if conn.traffic_class is TrafficClass.BEST_EFFORT:
                self._be_bits[conn.in_port] |= 1 << conn.vc
            elif conn.traffic_class is TrafficClass.VBR:
                self._vbr_bits[conn.in_port] |= 1 << conn.vc
                self._vbr_vcs[conn.in_port].append(conn.vc)
