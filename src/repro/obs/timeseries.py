"""Periodic time-series sampling of router state.

End-of-run aggregates cannot show *when* a router saturates, how deep the
NIC backlogs grow before the crossbar catches up, or whether credits are
cycling or pooling — the queue-trajectory view scheduler analyses are
built on.  :class:`TimeSeriesRecorder` samples the router every ``stride``
cycles into preallocated ring buffers (fixed memory on arbitrarily long
runs; the ring keeps the most recent ``capacity`` samples) and exports
JSONL or CSV rows.

Sampled per row: cycle, windowed and cumulative crossbar utilization,
flits buffered in VC memory, per-port NIC backlog, and credits in flight.
Windowed utilization is computed from grant-counter deltas between
samples, so the recorder never touches the hot path — it only *reads*
counters the crossbar maintains anyway.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..router.router import MMRouter

__all__ = ["TimeSeriesRecorder", "TIMESERIES_FIELDS"]

#: Row schema, in column order.  ``nic_backlog`` is a per-port list in
#: JSONL and is flattened to ``nic_backlog_<p>`` columns in CSV.
TIMESERIES_FIELDS = (
    "cycle",
    "utilization",
    "utilization_cum",
    "buffered_flits",
    "nic_backlog",
    "credits_in_flight",
)


class TimeSeriesRecorder:
    """Strided sampler writing into preallocated ring buffers."""

    def __init__(self, stride: int = 64, capacity: int = 4096) -> None:
        if stride <= 0:
            raise ValueError("stride must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.stride = stride
        self.capacity = capacity
        # Parallel preallocated rings; _pos is the next write slot and
        # _count saturates at capacity (ring full -> oldest overwritten).
        self._cycles = [0] * capacity
        self._util = [0.0] * capacity
        self._util_cum = [0.0] * capacity
        self._buffered = [0] * capacity
        self._backlogs: list[tuple[int, ...]] = [()] * capacity
        self._credits = [0] * capacity
        self._pos = 0
        self._count = 0
        self.dropped = 0
        self.samples_taken = 0
        self._last_sample_cycle: int | None = None
        self._last_grants = 0
        self._last_xbar_cycles = 0

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def due(self, now: int) -> bool:
        """True when ``now`` lands on the sampling stride."""
        return now % self.stride == 0

    def sample(self, now: int, router: "MMRouter") -> None:
        """Record one row of router state (call when :meth:`due`)."""
        xbar = router.crossbar
        grants = xbar.total_grants
        xbar_cycles = xbar.cycles
        dc = xbar_cycles - self._last_xbar_cycles
        if dc > 0:
            util = (grants - self._last_grants) / (dc * router.config.num_ports)
        else:
            util = 0.0
        self._last_grants = grants
        self._last_xbar_cycles = xbar_cycles
        self._last_sample_cycle = now

        pos = self._pos
        self._cycles[pos] = now
        self._util[pos] = util
        self._util_cum[pos] = xbar.utilization
        self._buffered[pos] = router.buffered_flits()
        self._backlogs[pos] = tuple(router.nic_backlogs())
        self._credits[pos] = router.credits.in_flight
        self._pos = (pos + 1) % self.capacity
        if self._count == self.capacity:
            self.dropped += 1
        else:
            self._count += 1
        self.samples_taken += 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def _iter_indices(self) -> Iterator[int]:
        if self._count < self.capacity:
            yield from range(self._count)
        else:
            pos = self._pos
            for i in range(self.capacity):
                yield (pos + i) % self.capacity

    def rows(self) -> list[dict[str, Any]]:
        """Samples oldest-first as JSON-safe dicts."""
        return [
            {
                "cycle": self._cycles[i],
                "utilization": self._util[i],
                "utilization_cum": self._util_cum[i],
                "buffered_flits": self._buffered[i],
                "nic_backlog": list(self._backlogs[i]),
                "credits_in_flight": self._credits[i],
            }
            for i in self._iter_indices()
        ]

    def to_jsonl(self) -> str:
        """One JSON object per line, oldest sample first."""
        return "".join(
            json.dumps(row, sort_keys=True, allow_nan=False) + "\n"
            for row in self.rows()
        )

    def to_csv(self) -> str:
        """CSV with per-port backlog flattened to ``nic_backlog_<p>``."""
        rows = self.rows()
        num_ports = len(rows[0]["nic_backlog"]) if rows else 0
        header = [
            "cycle",
            "utilization",
            "utilization_cum",
            "buffered_flits",
            *(f"nic_backlog_{p}" for p in range(num_ports)),
            "credits_in_flight",
        ]
        out = io.StringIO()
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow(header)
        for row in rows:
            writer.writerow(
                [
                    row["cycle"],
                    row["utilization"],
                    row["utilization_cum"],
                    row["buffered_flits"],
                    *row["nic_backlog"],
                    row["credits_in_flight"],
                ]
            )
        return out.getvalue()

    def to_payload(self) -> dict[str, Any]:
        """Summary + full rows for the telemetry artifact."""
        return {
            "stride": self.stride,
            "capacity": self.capacity,
            "samples_taken": self.samples_taken,
            "samples_kept": self._count,
            "dropped": self.dropped,
            "rows": self.rows(),
        }
