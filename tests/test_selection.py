"""Tests for repro.core.selection (selection matrix + conflict vector)."""

import numpy as np
import pytest

from repro.core.matching import Candidate
from repro.core.selection import SelectionMatrix


def cand(i, v, o, prio=1.0, level=0):
    return Candidate(i, v, o, prio, level)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            SelectionMatrix(0, 2)
        with pytest.raises(ValueError):
            SelectionMatrix(4, 0)

    def test_from_candidates_places_requests(self):
        m = SelectionMatrix.from_candidates(
            [[cand(0, 2, 1, 5.0, 0)], [cand(1, 0, 1, 3.0, 0)]], 2, 2
        )
        assert m.row_requests(0, 1) == [(0, 2, 5.0), (1, 0, 3.0)]
        assert m.total_requests() == 2

    def test_rejects_level_beyond_matrix(self):
        with pytest.raises(ValueError):
            SelectionMatrix.from_candidates([[cand(0, 0, 0, 1.0, level=2)]], 2, 2)

    def test_rejects_two_requests_same_level_same_input(self):
        m = SelectionMatrix(2, 2)
        m.place(cand(0, 0, 0, 1.0, 0))
        with pytest.raises(ValueError):
            m.place(cand(0, 1, 1, 1.0, 0))


class TestConflictVector:
    def test_paper_fig3_style_example(self):
        """4x4, two candidate levels, in the layout of the paper's Fig. 3."""
        m = SelectionMatrix(4, 2)
        # Level-0 candidates: inputs 0,1 want output 0; 2,3 want output 3.
        m.place(cand(0, 0, 0, 9.0, 0))
        m.place(cand(1, 0, 0, 8.0, 0))
        m.place(cand(2, 0, 3, 7.0, 0))
        m.place(cand(3, 0, 3, 6.0, 0))
        # Level-1 candidates: inputs 0,2 want output 1.
        m.place(cand(0, 1, 1, 4.0, 1))
        m.place(cand(2, 1, 1, 3.0, 1))
        cv = m.conflict_vector()
        np.testing.assert_array_equal(cv, [2, 0, 0, 2, 0, 2, 0, 0])

    def test_drop_input_clears_all_levels(self):
        m = SelectionMatrix(2, 2)
        m.place(cand(0, 0, 0, 1.0, 0))
        m.place(cand(0, 1, 1, 1.0, 1))
        m.place(cand(1, 0, 0, 1.0, 0))
        m.drop_input(0)
        assert m.total_requests() == 1
        assert m.row_requests(0, 0) == [(1, 0, 1.0)]

    def test_drop_output_clears_all_levels(self):
        m = SelectionMatrix(2, 2)
        m.place(cand(0, 0, 1, 1.0, 0))
        m.place(cand(1, 1, 1, 1.0, 1))
        m.place(cand(1, 0, 0, 2.0, 0))
        m.drop_output(1)
        assert m.total_requests() == 1
        assert m.has_requests()
        m.drop_output(0)
        assert not m.has_requests()

    def test_requests_for_output_spans_levels(self):
        m = SelectionMatrix(2, 3)
        m.place(cand(0, 0, 1, 5.0, 0))
        m.place(cand(1, 1, 1, 4.0, 2))
        assert m.requests_for_output(1) == [(0, 0, 0, 5.0), (2, 1, 1, 4.0)]


class TestRender:
    def test_render_mentions_levels_and_conflicts(self):
        m = SelectionMatrix(2, 2)
        m.place(cand(0, 0, 1, 5.0, 0))
        text = m.render()
        assert "level 0" in text
        assert "level 1" in text
        assert "conflicts" in text
        # The single request shows as priority 5 on out1's row.
        assert "  5" in text
