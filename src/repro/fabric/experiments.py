"""Fabric experiments: topology blocking sweeps over the campaign executor.

The multi-router analogue of the sessions blocking sweep: sweep session
arrival rate across topologies and path policies, run every point through
:func:`repro.campaign.run_campaign` (content-addressed caching, worker
pool, byte-identical serial-vs-parallel artifacts), and reduce each
point's fabric payload to per-class blocking with Wilson intervals,
admitted-path hop counts, and path-balance summaries.

Reference curve: for *pure-CBR* mixes the expected load on the
bottleneck link (under idealized equal-cost splitting) feeds the
Kaufman–Roberts multi-rate recursion — a single-hop lower-bound on the
multi-hop blocking the fabric measures.

Imported lazily by ``repro.fabric`` users (this module pulls in
``repro.campaign``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Sequence

from ..analysis.blocking import kaufman_roberts_aggregate
from ..analysis.stats import wilson_interval
from ..campaign.executor import CampaignResult, run_campaign
from ..campaign.plan import CampaignPlan, PointSpec, WorkloadSpec
from ..campaign.store import ResultStore
from ..router.config import RouterConfig
from ..sessions.churn import ChurnConfig
from ..sessions.signaling import SignalingConfig
from ..sim.engine import RunControl
from ..traffic.cbr import CBR_CLASSES
from .paths import PathProvider
from .spec import FabricSpec, TopologySpec

__all__ = [
    "DEMO_FABRIC_CHURN",
    "FabricBlockingPoint",
    "bottleneck_kr_reference",
    "fabric_blocking_plan",
    "fabric_point",
    "reduce_fabric_blocking",
    "render_fabric_blocking_table",
    "run_fabric_blocking",
    "summarize_points",
]

#: Demo churn base: single-class CBR (55 Mb/s streams) so the measured
#: curves have a clean Kaufman–Roberts reference on the bottleneck link.
DEMO_FABRIC_CHURN = ChurnConfig(
    arrivals_per_kcycle=2.0,
    mean_hold_cycles=3_000.0,
    mix=(("cbr-high", 1.0),),
)


def fabric_point(
    config: RouterConfig,
    fabric: FabricSpec,
    *,
    cycles: int,
    seed: int = 0,
    arbiter: str = "coa",
    scheme: str = "siabp",
    target_load: float = 0.0,
) -> PointSpec:
    """One fabric campaign point (the workload spec is a placeholder —
    fabric points build their background from the fabric spec itself)."""
    return PointSpec(
        config=config,
        arbiter=arbiter,
        scheme=scheme,
        target_load=target_load,
        seed=seed,
        workload=WorkloadSpec.cbr(),
        cycles=cycles,
        warmup_cycles=0,
        fabric=fabric,
    )


def fabric_blocking_plan(
    name: str,
    config: RouterConfig,
    topology: TopologySpec,
    arrival_rates: Sequence[float],
    policies: Sequence[str],
    *,
    base_churn: ChurnConfig = DEMO_FABRIC_CHURN,
    signaling: SignalingConfig = SignalingConfig(),
    control: RunControl = RunControl(cycles=12_000, warmup_cycles=0),
    k_paths: int = 4,
    max_path_attempts: int = 2,
    seed: int = 0,
    arbiter: str = "coa",
    scheme: str = "siabp",
) -> CampaignPlan:
    """Path-policy × arrival-rate grid over one topology."""
    if not arrival_rates or not policies:
        raise ValueError("need at least one arrival rate and one policy")
    points = tuple(
        fabric_point(
            config,
            FabricSpec(
                topology=topology,
                churn=dataclasses.replace(
                    base_churn, arrivals_per_kcycle=float(rate)
                ),
                path_policy=policy,
                k_paths=k_paths,
                max_path_attempts=max_path_attempts,
                signaling=signaling,
            ),
            cycles=control.cycles,
            seed=seed,
            arbiter=arbiter,
            scheme=scheme,
        )
        for policy in policies
        for rate in arrival_rates
    )
    return CampaignPlan(name=name, points=points)


# ----------------------------------------------------------------------
# Kaufman–Roberts bottleneck reference
# ----------------------------------------------------------------------


def _link_shares(fabric: FabricSpec, config: RouterConfig) -> dict:
    """Expected per-link traversal share under idealized ECMP splitting.

    Weighs each (src, dst) host pair by the source's host-port count
    (arrivals are per port) and splits each pair's traffic evenly over
    its candidate paths.  Shares sum to the mean path length, so the max
    share is the fraction of total offered traffic crossing the
    bottleneck link.
    """
    topo = fabric.topology.build()
    hosts = fabric.topology.host_routers()
    provider = PathProvider(topo, fabric.k_paths)
    port_weight = {
        r: config.num_ports - topo.degree(r) for r in hosts
    }
    total_ports = sum(port_weight.values())
    shares: dict[tuple[int, int], float] = {}
    for src in hosts:
        src_w = port_weight[src] / total_ports
        others = [d for d in hosts if d != src]
        for dst in others:
            pair_w = src_w / len(others)
            paths = provider.paths(src, dst)
            frac = pair_w / len(paths)
            for path in paths:
                for u, v in zip(path, path[1:]):
                    shares[(u, v)] = shares.get((u, v), 0.0) + frac
    return shares


def bottleneck_kr_reference(
    fabric: FabricSpec, config: RouterConfig, offered_erlangs: float
) -> float:
    """Kaufman–Roberts blocking on the expected bottleneck link.

    Defined for pure-CBR mixes only (deterministic slot demands); the
    per-class offered load on the most-loaded link is the total offered
    session load times that link's expected traversal share, split by
    mix weight.  Single-link, so it lower-bounds the multi-hop measured
    blocking — a reference curve, not a prediction.
    """
    active = [(n, w) for n, w in fabric.churn.mix if w > 0]
    if not active or not all(n.startswith("cbr-") for n, _ in active):
        return float("nan")
    shares = _link_shares(fabric, config)
    if not shares:
        return float("nan")
    p_max = max(shares.values())
    per_link = offered_erlangs * p_max
    total_w = sum(w for _, w in active)
    classes = []
    for name, w in active:
        rate_bps = CBR_CLASSES[name.removeprefix("cbr-")].rate_bps
        slots = int(config.rate_to_slots(rate_bps))
        classes.append((per_link * w / total_w, slots))
    return kaufman_roberts_aggregate(config.round_cycles, classes)


# ----------------------------------------------------------------------
# Reduction
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FabricBlockingPoint:
    """One reduced fabric campaign outcome (plot-ready)."""

    topology: str
    policy: str
    offered_erlangs: float
    offered_sessions: int
    blocked_sessions: int
    readmitted_alt: int
    mean_hops: float
    balance_jain: float
    kaufman_roberts_reference: float

    @property
    def blocking_probability(self) -> float:
        if self.offered_sessions == 0:
            return float("nan")
        return self.blocked_sessions / self.offered_sessions

    @property
    def blocking_wilson_95(self) -> tuple[float, float]:
        return wilson_interval(self.blocked_sessions, self.offered_sessions)


def reduce_fabric_blocking(
    result: CampaignResult,
) -> list[FabricBlockingPoint]:
    """One :class:`FabricBlockingPoint` per campaign outcome."""
    points = []
    for outcome in result.outcomes:
        payload = outcome.sessions
        fab = outcome.spec.fabric
        if payload is None or fab is None:
            raise ValueError(
                f"outcome {outcome.spec.describe()} has no fabric payload"
            )
        offered_erl = float(payload["offered_erlangs"])
        hops_mean = payload["hops"]["mean"]
        points.append(
            FabricBlockingPoint(
                topology=fab.topology.describe(),
                policy=fab.path_policy,
                offered_erlangs=offered_erl,
                offered_sessions=int(payload["offered"]),
                blocked_sessions=int(payload["blocked"]),
                readmitted_alt=int(payload["path_attempts"]["readmitted_alt"]),
                mean_hops=(
                    float(hops_mean) if hops_mean is not None else float("nan")
                ),
                balance_jain=float(payload["path_balance"]["final"]["jain"]),
                kaufman_roberts_reference=bottleneck_kr_reference(
                    fab, outcome.spec.config, offered_erl
                ),
            )
        )
    return points


def run_fabric_blocking(
    plan: CampaignPlan,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress=None,
) -> tuple[CampaignResult, list[FabricBlockingPoint]]:
    """Execute a fabric blocking sweep and reduce it to plot-ready points."""
    result = run_campaign(plan, jobs=jobs, store=store, progress=progress)
    return result, reduce_fabric_blocking(result)


def render_fabric_blocking_table(points: Sequence[FabricBlockingPoint]) -> str:
    """Fixed-width text table of a reduced fabric sweep."""
    header = (
        f"{'topology':<16} {'policy':<10} {'offered':>8} {'block':>7} "
        f"{'wilson95':>17} {'alt':>5} {'hops':>5} {'jain':>5} {'KR ref':>8}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        low, high = p.blocking_wilson_95
        bp = p.blocking_probability
        kr = p.kaufman_roberts_reference
        lines.append(
            f"{p.topology:<16} {p.policy:<10} {p.offered_erlangs:>8.2f} "
            f"{bp:>7.3f} [{low:>6.3f},{high:>6.3f}] "
            f"{p.readmitted_alt:>5d} {p.mean_hops:>5.2f} "
            f"{p.balance_jain:>5.3f} {kr:>8.3f}"
        )
    return "\n".join(lines)


def summarize_points(points: Sequence[FabricBlockingPoint]) -> dict[str, Any]:
    """Strict-JSON summary of a reduced sweep (bench reports)."""
    return {
        "points": [
            {
                "topology": p.topology,
                "policy": p.policy,
                "offered_erlangs": p.offered_erlangs,
                "offered_sessions": p.offered_sessions,
                "blocked_sessions": p.blocked_sessions,
                "blocking_probability": (
                    None
                    if p.blocking_probability != p.blocking_probability
                    else p.blocking_probability
                ),
                "blocking_wilson_95": list(p.blocking_wilson_95),
                "readmitted_alt": p.readmitted_alt,
                "mean_hops": (
                    None if p.mean_hops != p.mean_hops else p.mean_hops
                ),
                "balance_jain": p.balance_jain,
                "kaufman_roberts_reference": (
                    None
                    if p.kaufman_roberts_reference
                    != p.kaufman_roberts_reference
                    else p.kaufman_roberts_reference
                ),
            }
            for p in points
        ]
    }
