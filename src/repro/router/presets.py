"""Named configuration presets and config (de)serialization.

Presets capture the router configurations the reproduction and its
companion papers discuss, so experiments can name them instead of
repeating field lists; serialization round-trips a
:class:`~repro.router.config.RouterConfig` through a plain dict (JSON/
TOML-friendly) for experiment manifests.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from .config import RouterConfig

__all__ = ["PRESETS", "preset", "config_to_dict", "config_from_dict"]


#: Named configurations.
PRESETS: dict[str, RouterConfig] = {
    # The paper's reconstructed evaluation testbed (DESIGN.md §2).
    "paper-4x4": RouterConfig(
        num_ports=4,
        vcs_per_link=64,
        candidate_levels=4,
        flit_size_bits=1024,
        phit_size_bits=16,
        link_rate_bps=1.24e9,
        vc_buffer_depth=4,
    ),
    # Larger switch, same per-link parameters (companion papers discuss
    # scaling the MMR design point up).
    "mmr-8x8": RouterConfig(
        num_ports=8,
        vcs_per_link=64,
        candidate_levels=4,
        flit_size_bits=1024,
        phit_size_bits=16,
        link_rate_bps=1.24e9,
        vc_buffer_depth=4,
    ),
    # Dense-VC variant: one VC per connection for very many connections.
    "many-vcs": RouterConfig(
        num_ports=4,
        vcs_per_link=256,
        candidate_levels=4,
        vc_buffer_depth=2,
    ),
    # Tiny configuration for unit tests and fast CI experiments.
    "tiny": RouterConfig(
        num_ports=2,
        vcs_per_link=4,
        candidate_levels=2,
        vc_buffer_depth=2,
        flit_cycles_per_round=400,
    ),
}


def preset(name: str, **overrides: Any) -> RouterConfig:
    """Fetch a named preset, optionally overriding fields."""
    try:
        base = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; known: {', '.join(PRESETS)}"
        ) from None
    return base.with_overrides(**overrides) if overrides else base


def config_to_dict(config: RouterConfig) -> dict[str, Any]:
    """Plain-dict form of a config (JSON/TOML friendly)."""
    return dataclasses.asdict(config)


def config_from_dict(data: dict[str, Any]) -> RouterConfig:
    """Rebuild a config from :func:`config_to_dict` output.

    Unknown keys are rejected (catching schema drift early); missing
    keys fall back to the dataclass defaults.
    """
    known = {f.name for f in dataclasses.fields(RouterConfig)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown config fields: {sorted(unknown)}")
    return RouterConfig(**data)
