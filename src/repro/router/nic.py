"""Network Interface Card (NIC) model.

One NIC sits on every input link of the router (paper Fig. 4).  Traffic
sources deposit flits into per-connection NIC buffers, which are modelled
as infinite (the host's main memory backs them).  A demand-driven
round-robin link controller forwards, each flit cycle, at most one flit
onto the physical link — choosing among the connections that have both a
flit queued *and* a credit available.  The paper finds this simple policy
sufficient because the router's own scheduler is what enforces QoS; the
NIC merely adapts to the router's consumption through back-pressure.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .config import RouterConfig

__all__ = ["NIC"]


class NIC:
    """NIC attached to one router input port.

    Flits are stored as ``(gen_cycle, frame_id, frame_last)`` tuples in
    per-VC deques; a bitmask of non-empty queues drives the link
    controller's eligibility test without scanning the deques.  All
    hot-path state is plain Python — at one push/pop per cycle, numpy
    scalar indexing costs more than it saves.
    """

    def __init__(self, config: RouterConfig, port: int) -> None:
        self.config = config
        self.port = port
        v = config.vcs_per_link
        self._queues: list[deque[tuple[int, int, bool]]] = [deque() for _ in range(v)]
        # Bitmask of non-empty queues (hot-path eligibility test).
        self._mask = 0
        self._rr_ptr = 0
        #: Total flits ever accepted from sources.
        self.accepted = 0
        #: Total flits ever forwarded to the router.
        self.forwarded = 0

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------

    def inject(
        self, vc: int, gen_cycle: int, frame_id: int = -1, frame_last: bool = False
    ) -> None:
        """Deposit one flit into the NIC buffer of a connection's VC."""
        self._queues[vc].append((gen_cycle, frame_id, frame_last))
        self._mask |= 1 << vc
        self.accepted += 1

    # ------------------------------------------------------------------
    # Link side
    # ------------------------------------------------------------------

    def select(self, credit_mask: int) -> int:
        """Demand-driven round-robin choice of the VC to forward.

        ``credit_mask`` is this port's bitmask of VCs with a credit
        available (see :meth:`repro.router.CreditState.mask_for`).
        Returns the VC index, or ``-1`` when no connection has both a
        flit and a credit.  Does not dequeue; callers follow up with
        :meth:`pop`.
        """
        eligible = self._mask & credit_mask
        if not eligible:
            return -1
        # First eligible VC at or after the round-robin pointer, else the
        # lowest eligible VC (wrap-around).
        ahead = eligible >> self._rr_ptr
        if ahead:
            return self._rr_ptr + ((ahead & -ahead).bit_length() - 1)
        return (eligible & -eligible).bit_length() - 1

    def pop(self, vc: int) -> tuple[int, int, bool]:
        """Dequeue the head flit of ``vc`` and advance the RR pointer."""
        q = self._queues[vc]
        if not q:
            raise IndexError(f"pop from empty NIC queue, port {self.port} vc {vc}")
        flit = q.popleft()
        if not q:
            self._mask &= ~(1 << vc)
        self._rr_ptr = (vc + 1) % self.config.vcs_per_link
        self.forwarded += 1
        return flit

    def peek(self, vc: int) -> tuple[int, int, bool] | None:
        """Head flit of ``vc`` without dequeuing, or ``None`` if empty."""
        q = self._queues[vc]
        return q[0] if q else None

    # ------------------------------------------------------------------
    # Fault/recovery paths (see repro.faults)
    # ------------------------------------------------------------------

    def drain(self, vc: int) -> list[tuple[int, int, bool]]:
        """Remove and return every queued flit of one VC (teardown path).

        Does not touch the ``accepted``/``forwarded`` counters: the flits
        were accepted once and are being migrated or discarded, not
        re-generated.
        """
        q = self._queues[vc]
        flits = list(q)
        q.clear()
        self._mask &= ~(1 << vc)
        return flits

    def requeue(self, vc: int, flits: list[tuple[int, int, bool]]) -> None:
        """Append previously drained flits onto a VC, preserving order.

        Used when a torn-down connection is re-admitted on a different
        virtual channel: the NIC backlog follows the connection.
        """
        if not flits:
            return
        self._queues[vc].extend(flits)
        self._mask |= 1 << vc

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def has_backlog(self) -> bool:
        """True while any VC queue holds a flit (occupancy-bitmask read).

        O(1) on the existing eligibility mask — the event-skipping
        engine's idle predicate polls this every cycle.
        """
        return bool(self._mask)

    @property
    def queue_lengths(self) -> np.ndarray:
        """(vcs,) flit counts waiting in the NIC (built on demand)."""
        arr = np.array([len(q) for q in self._queues], dtype=np.int64)
        arr.flags.writeable = False
        return arr

    def backlog(self) -> int:
        """Total flits waiting in this NIC."""
        return sum(len(q) for q in self._queues)

    def queue_length(self, vc: int) -> int:
        """Flits waiting on one VC (drain checks on the teardown path)."""
        return len(self._queues[vc])

    def oldest_gen_cycle(self, vc: int) -> int | None:
        """Generation cycle of the head flit of a VC, if any."""
        q = self._queues[vc]
        return q[0][0] if q else None
