"""Structured event tracing for debugging and inspection.

A :class:`Tracer` subscribes to a :class:`SingleRouterSim`-style cycle
loop and records per-cycle events — injections, link transfers, matchings,
departures — as plain tuples that tests and notebooks can filter.  Tracing
is opt-in and bounded (a ring of the last ``capacity`` events) so it can
stay enabled on long runs without exhausting memory.

The tracer hooks the router at the pipeline seams every cycle loop goes
through — ``crossbar.transfer`` for matchings/departures and ``NIC.pop``
for link forwards — rather than ``router.step``, because the fault
harness (:class:`repro.faults.FaultySingleRouterSim`) inlines the
pipeline and never calls ``step``; hooking the seams makes tracing work
identically under fault injection.  It does not change behaviour
(verified by the equivalence tests, healthy and faulty).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

from ..router.router import MMRouter

__all__ = ["EventKind", "TraceEvent", "Tracer", "dump_router_state"]


def dump_router_state(router: MMRouter, now: int) -> str:
    """Render a router's buffer/credit state as diagnostic text.

    Used by the simulation watchdog (:mod:`repro.faults.watchdog`) when it
    detects a stall or a conservation violation: instead of hanging or
    failing opaquely, the run aborts with this snapshot attached.  Only
    non-idle (port, vc) pairs are listed, so the dump stays readable on
    large routers.
    """
    lines = [
        f"router state at cycle {now}:",
        f"  buffered flits: {router.buffered_flits()}  "
        f"nic backlog: {router.nic_backlog()}  "
        f"credits in flight: {router.credits.in_flight}",
    ]
    occupancy = router.vc_memory.occupancy
    credits = router.credits.counters
    depth = router.config.vc_buffer_depth
    for port in range(router.config.num_ports):
        backlog = router.nics[port].queue_lengths
        busy = [
            vc
            for vc in range(router.config.vcs_per_link)
            if occupancy[port, vc] or backlog[vc] or credits[port, vc] != depth
        ]
        if not busy:
            continue
        lines.append(f"  port {port}:")
        for vc in busy:
            conn = router.connection_at(port, vc)
            lines.append(
                f"    vc {vc:>3} conn {conn:>3}: "
                f"buffered={int(occupancy[port, vc])} "
                f"nic_backlog={int(backlog[vc])} "
                f"credits={int(credits[port, vc])} "
                f"in_flight={router.credits.in_flight_for(port, vc)}"
            )
    return "\n".join(lines)


class EventKind(enum.Enum):
    """Kinds of traced events."""

    MATCH = "match"
    DEPARTURE = "departure"
    NIC_FORWARD = "nic_forward"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event.

    ``data`` holds the event-specific payload:

    * MATCH: tuple of grants ``(in_port, vc, out_port)``;
    * DEPARTURE: ``(in_port, vc, out_port, gen_cycle, frame_id)``;
    * NIC_FORWARD: ``(port, vc)``.
    """

    cycle: int
    kind: EventKind
    data: tuple

    def __str__(self) -> str:
        return f"[{self.cycle:>8}] {self.kind.value}: {self.data}"


class Tracer:
    """Bounded event recorder attached to one router."""

    def __init__(self, router: MMRouter, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.router = router
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._installed = False
        self._orig_transfer: Callable | None = None
        self._orig_pops: list[Callable] = []
        self._now = 0
        self.dropped = 0

    # ------------------------------------------------------------------

    def install(self) -> "Tracer":
        """Wrap ``crossbar.transfer`` and each NIC's ``pop``; idempotent.

        ``transfer`` runs every cycle in both the healthy and the fault
        harness loops and receives the cycle number, so it doubles as the
        tracer's clock; NIC forwards happen later the same cycle and are
        stamped with it.
        """
        if self._installed:
            return self
        crossbar = self.router.crossbar
        original_transfer = crossbar.transfer

        def traced_transfer(matching, vc_memory, now: int):
            self._now = now
            departures = original_transfer(matching, vc_memory, now)
            if departures:
                grants = tuple(
                    (d.in_port, d.vc, d.out_port) for d in departures
                )
                self._record(TraceEvent(now, EventKind.MATCH, grants))
                for d in departures:
                    self._record(TraceEvent(
                        now, EventKind.DEPARTURE,
                        (d.in_port, d.vc, d.out_port, d.gen_cycle, d.frame_id),
                    ))
            return departures

        self._orig_transfer = original_transfer
        crossbar.transfer = traced_transfer  # type: ignore[method-assign]

        self._orig_pops = []
        for port, nic in enumerate(self.router.nics):
            original_pop = nic.pop

            def traced_pop(vc: int, *, _port=port, _pop=original_pop):
                flit = _pop(vc)
                self._record(
                    TraceEvent(self._now, EventKind.NIC_FORWARD, (_port, vc))
                )
                return flit

            self._orig_pops.append(original_pop)
            nic.pop = traced_pop  # type: ignore[method-assign]
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the original ``transfer`` and ``pop`` methods."""
        if not self._installed:
            return
        if self._orig_transfer is not None:
            self.router.crossbar.transfer = (  # type: ignore[method-assign]
                self._orig_transfer
            )
        for nic, original_pop in zip(self.router.nics, self._orig_pops):
            nic.pop = original_pop  # type: ignore[method-assign]
        self._orig_pops = []
        self._installed = False

    def __enter__(self) -> "Tracer":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------

    def _record(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def filter(
        self,
        kind: EventKind | None = None,
        cycle_range: tuple[int, int] | None = None,
    ) -> list[TraceEvent]:
        """Events matching a kind and/or half-open cycle range."""
        out: Iterable[TraceEvent] = self._events
        if kind is not None:
            out = (e for e in out if e.kind is kind)
        if cycle_range is not None:
            lo, hi = cycle_range
            out = (e for e in out if lo <= e.cycle < hi)
        return list(out)

    def departures_of(self, in_port: int, vc: int) -> list[TraceEvent]:
        """Departure events of one (port, vc) — one connection's flits."""
        return [
            e for e in self._events
            if e.kind is EventKind.DEPARTURE
            and e.data[0] == in_port and e.data[1] == vc
        ]

    def render(self, limit: int = 50) -> str:
        """Human-readable dump of the most recent events."""
        tail = list(self._events)[-limit:]
        lines = [str(e) for e in tail]
        if self.dropped:
            lines.insert(0, f"... ({self.dropped} earlier events dropped)")
        return "\n".join(lines)
