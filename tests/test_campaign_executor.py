"""Campaign execution: pool, retries, caching (repro.campaign.executor)."""

import functools
import json
import os

import pytest

from repro.campaign import (
    CampaignError,
    CampaignPlan,
    ProgressReporter,
    ResultStore,
    WorkloadSpec,
    canonical_json,
    run_campaign,
)
from repro.campaign import plan as plan_mod
from repro.campaign.executor import _worker
from repro.router import RouterConfig
from repro.sim import RunControl
from repro.sim.replication import replicate, replicate_sweep, spawn_seeds
from repro.sim.sweep import run_load_sweep
from repro.traffic.mixes import build_cbr_workload

CFG = RouterConfig(num_ports=4, vcs_per_link=32, candidate_levels=4)
CONTROL = RunControl(cycles=600, warmup_cycles=100)


def tiny_plan(loads=(0.3, 0.5), seeds=(1,), arbiters=("coa", "wfa"),
              name="tiny"):
    return CampaignPlan.grid(
        name, CFG, arbiters=arbiters, loads=loads, seeds=seeds,
        workload=WorkloadSpec.cbr(), control=CONTROL,
    )


def artifact_bytes(root):
    return {
        p.name: p.read_bytes()
        for p in root.glob("objects/*/*.json")
    }


# Top-level (picklable) failure-injecting workers for the pool tests. ---

def flaky_worker(marker_dir: str, payload: dict) -> dict:
    """Raises on the first attempt per point, then behaves normally."""
    marker = os.path.join(
        marker_dir, f"seen-{payload['arbiter']}-{payload['target_load']}"
    )
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("injected transient failure")
    return _worker(payload)


def crashing_worker(marker_dir: str, payload: dict) -> dict:
    """Hard-kills the worker process once per point (no exception)."""
    marker = os.path.join(
        marker_dir, f"crashed-{payload['arbiter']}-{payload['target_load']}"
    )
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(3)
    return _worker(payload)


def always_failing_worker(payload: dict) -> dict:
    raise RuntimeError("injected permanent failure")


# ----------------------------------------------------------------------


class TestDeterminism:
    def test_parallel_and_serial_runs_are_byte_identical(self, tmp_path):
        plan = tiny_plan(loads=(0.3, 0.4, 0.5, 0.6))
        serial_store = ResultStore(tmp_path / "serial")
        parallel_store = ResultStore(tmp_path / "parallel")
        serial = run_campaign(plan, jobs=1, store=serial_store,
                              write_manifest=False)
        parallel = run_campaign(plan, jobs=4, store=parallel_store,
                                write_manifest=False)
        assert serial.misses == parallel.misses == len(plan)
        a, b = artifact_bytes(tmp_path / "serial"), artifact_bytes(
            tmp_path / "parallel")
        assert a == b
        assert len(a) == len(plan)
        # Outcomes come back in plan order with identical payloads.
        for so, po in zip(serial.outcomes, parallel.outcomes):
            assert so.key == po.key
            assert canonical_json(so.result.to_dict()) == canonical_json(
                po.result.to_dict()
            )

    def test_uncached_run_works_without_store(self):
        result = run_campaign(tiny_plan(), jobs=1)
        assert result.misses == len(result.outcomes)
        assert result.manifest_path is None


class TestCaching:
    def test_second_invocation_is_all_hits_with_identical_results(
            self, tmp_path):
        plan = tiny_plan()
        store = ResultStore(tmp_path)
        first = run_campaign(plan, jobs=1, store=store)
        before = artifact_bytes(tmp_path)
        second = run_campaign(plan, jobs=2, store=store)
        assert first.misses == len(plan) and first.hits == 0
        assert second.hits == len(plan) and second.misses == 0
        assert artifact_bytes(tmp_path) == before
        for fo, so in zip(first.outcomes, second.outcomes):
            assert canonical_json(fo.result.to_dict()) == canonical_json(
                so.result.to_dict()
            )

    @pytest.mark.parametrize(
        "variant",
        [
            lambda: tiny_plan(seeds=(2,)),
            lambda: tiny_plan(loads=(0.35, 0.55)),
            lambda: tiny_plan(arbiters=("islip", "pim")),
        ],
    )
    def test_any_spec_change_misses(self, tmp_path, variant):
        store = ResultStore(tmp_path)
        run_campaign(tiny_plan(), jobs=1, store=store)
        changed = run_campaign(variant(), jobs=1, store=store)
        assert changed.hits == 0

    def test_code_version_bump_misses(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        plan = tiny_plan()
        run_campaign(plan, jobs=1, store=store)
        monkeypatch.setattr(plan_mod, "CODE_VERSION",
                            plan_mod.CODE_VERSION + 1)
        rerun = run_campaign(tiny_plan(), jobs=1, store=store)
        assert rerun.hits == 0

    def test_corrupted_artifact_recomputes_without_crashing(self, tmp_path):
        store = ResultStore(tmp_path)
        plan = tiny_plan()
        first = run_campaign(plan, jobs=1, store=store)
        victim = first.outcomes[0]
        store.path_for(victim.key).write_text("garbage", encoding="utf-8")
        rerun = run_campaign(plan, jobs=1, store=store)
        assert rerun.hits == len(plan) - 1
        assert rerun.misses == 1
        assert store.corrupt_dropped == 1
        # The recomputed artifact is valid again and identical.
        healed = run_campaign(plan, jobs=1, store=store)
        assert healed.hits == len(plan)

    def test_manifest_written_with_per_point_accounting(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_campaign(tiny_plan(), jobs=1, store=store)
        data = json.loads(result.manifest_path.read_text())
        assert data["totals"]["points"] == len(result.outcomes)
        assert data["totals"]["misses"] == len(result.outcomes)
        assert len(data["points"]) == len(result.outcomes)
        assert all(p["attempts"] == 1 for p in data["points"])


class TestRetries:
    def test_serial_retry_then_success(self, tmp_path):
        plan = tiny_plan(loads=(0.3,), arbiters=("coa",))
        worker = functools.partial(flaky_worker, str(tmp_path))
        result = run_campaign(plan, jobs=1, worker=worker)
        assert result.outcomes[0].attempts == 2

    def test_fails_loudly_after_exhausting_attempts(self):
        plan = tiny_plan(loads=(0.3,), arbiters=("coa",))
        with pytest.raises(CampaignError, match="after 2 attempts"):
            run_campaign(plan, jobs=1, worker=always_failing_worker,
                         max_attempts=2)

    def test_parallel_retry_on_worker_exception(self, tmp_path):
        plan = tiny_plan(loads=(0.3, 0.5), arbiters=("coa",))
        worker = functools.partial(flaky_worker, str(tmp_path))
        result = run_campaign(plan, jobs=2, worker=worker)
        assert len(result.outcomes) == 2
        assert all(o.attempts == 2 for o in result.outcomes)

    def test_parallel_recovers_from_hard_worker_crash(self, tmp_path):
        plan = tiny_plan(loads=(0.3, 0.5), arbiters=("coa",))
        worker = functools.partial(crashing_worker, str(tmp_path))
        result = run_campaign(plan, jobs=2, worker=worker)
        assert len(result.outcomes) == 2
        assert all(o.attempts >= 2 for o in result.outcomes)
        # Crash-then-recover still produces the same artifacts as a
        # healthy serial run.
        healthy = run_campaign(plan, jobs=1)
        for a, b in zip(result.outcomes, healthy.outcomes):
            assert canonical_json(a.result.to_dict()) == canonical_json(
                b.result.to_dict()
            )

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            run_campaign(tiny_plan(), jobs=0)
        with pytest.raises(ValueError):
            run_campaign(tiny_plan(), max_attempts=0)


class TestSweepAndReplicationRouting:
    def test_run_load_sweep_spec_matches_legacy_builder(self):
        def legacy_builder(router, rng, load):
            return build_cbr_workload(router, load, rng)

        legacy = run_load_sweep((0.3, 0.5), legacy_builder, CFG, "coa",
                                CONTROL, seed=4)
        spec = run_load_sweep((0.3, 0.5), WorkloadSpec.cbr(), CFG, "coa",
                              CONTROL, seed=4)
        for lp, sp in zip(legacy.points, spec.points):
            assert canonical_json(lp.result.to_dict()) == canonical_json(
                sp.result.to_dict()
            )

    def test_run_load_sweep_uses_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        run_load_sweep((0.3,), WorkloadSpec.cbr(), CFG, "coa", CONTROL,
                       seed=4, store=store)
        assert len(artifact_bytes(tmp_path)) == 1

    def test_replicate_n_seeds_path(self):
        point = replicate(WorkloadSpec.cbr(), CFG, "coa", CONTROL, 0.4,
                          n_seeds=3, root_seed=11)
        assert point.n == 3
        seeds = {r.seed for r in point.results}
        assert len(seeds) == 3  # collision-free spawn-derived seeds
        assert seeds == set(spawn_seeds(11, 3))

    def test_replicate_explicit_seeds_backward_compatible(self):
        point = replicate(WorkloadSpec.cbr(), CFG, "coa", CONTROL, 0.4,
                          seeds=(1, 2))
        assert point.n == 2
        assert [r.seed for r in point.results] == [1, 2]

    def test_replicate_requires_some_seed_source(self):
        with pytest.raises(ValueError):
            replicate(WorkloadSpec.cbr(), CFG, "coa", CONTROL, 0.4)

    def test_replicate_sweep_spec_grid(self, tmp_path):
        store = ResultStore(tmp_path)
        points = replicate_sweep((0.3, 0.5), WorkloadSpec.cbr(), CFG, "coa",
                                 CONTROL, n_seeds=2, root_seed=5, store=store)
        assert [p.target_load for p in points] == [0.3, 0.5]
        assert all(p.n == 2 for p in points)
        assert len(artifact_bytes(tmp_path)) == 4


class TestSpawnSeeds:
    def test_deterministic_and_distinct(self):
        a = spawn_seeds(0, 8)
        assert a == spawn_seeds(0, 8)
        assert len(set(a)) == 8
        assert spawn_seeds(1, 8) != a

    def test_prefix_stability(self):
        # Growing the ensemble keeps the already-run seeds valid.
        assert spawn_seeds(0, 8)[:3] == spawn_seeds(0, 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, 0)


class TestProgressReporter:
    def test_throttled_telemetry_and_final_line(self):
        import io

        clock = iter([0.0, 1.0, 1.1, 10.0, 10.5]).__next__
        out = io.StringIO()
        rep = ProgressReporter(total=3, stream=out, interval_s=2.0,
                               clock=clock)
        rep.point_done(cached=True)       # t=1.0 -> emits (first interval)
        rep.point_done(cached=False)      # t=1.1 -> throttled
        rep.point_done(cached=False, attempts=2)  # t=10.0 -> final, emits
        rep.finish()                      # already emitted -> no dup
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert "1/3 points" in lines[0]
        assert "3/3 points" in lines[1]
        assert "1 cached" in lines[1]
        assert "1 retries" in lines[1]

    def test_rate_counts_only_computed_points(self):
        clock = iter([0.0, 2.0, 2.0, 2.0]).__next__
        import io

        rep = ProgressReporter(total=4, stream=io.StringIO(), clock=clock)
        rep.point_done(cached=True)
        rep.point_done(cached=False)
        assert rep.rate(2.0) == pytest.approx(0.5)

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            ProgressReporter(total=0)


class TestCampaignCLI:
    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    def test_campaign_command_runs_and_resumes(self, tmp_path, capsys):
        base = [
            "campaign", "--traffic", "cbr", "--arbiters", "coa",
            "--loads", "0.3,0.5", "--n-seeds", "2", "--cycles", "600",
            "--warmup", "100", "--vcs", "32", "--quiet",
            "--store", str(tmp_path / "store"),
        ]
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert self.run_cli(base + ["--jobs", "2",
                                    "--summary-json", str(first)]) == 0
        out = capsys.readouterr().out
        assert "campaign summary" in out
        assert self.run_cli(base + ["--summary-json", str(second)]) == 0
        a = json.loads(first.read_text())
        b = json.loads(second.read_text())
        assert a["points"] == b["points"] == 4
        assert a["misses"] == 4 and a["hits"] == 0
        assert b["hits"] == 4 and b["misses"] == 0
        assert b["manifest"] and os.path.exists(b["manifest"])

    def test_campaign_rejects_unknown_arbiter(self, capsys):
        code = self.run_cli([
            "campaign", "--arbiters", "coa,nope", "--loads", "0.3",
            "--cycles", "500", "--vcs", "16", "--quiet",
        ])
        assert code == 2
        assert "unknown arbiter" in capsys.readouterr().err

    def test_sweep_accepts_jobs_and_store(self, tmp_path, capsys):
        code = self.run_cli([
            "sweep", "--traffic", "cbr", "--arbiters", "coa",
            "--loads", "0.3", "--cycles", "600", "--vcs", "32",
            "--jobs", "1", "--store", str(tmp_path),
        ])
        assert code == 0
        assert "sweep" in capsys.readouterr().out
        assert len(artifact_bytes(tmp_path)) == 1
