"""Constant-bit-rate traffic sources.

The paper's CBR evaluation (its Fig. 5) uses a random mix of connections
drawn from three bandwidth classes modelled on real services:

* **low** — 64 Kbps (voice / ISDN channel),
* **medium** — 1.54 Mbps (T1 / compressed video),
* **high** — 55 Mbps (uncompressed / production video).

A CBR source emits one flit every fixed inter-arrival time
``IAT = flit_size / rate`` (in flit cycles, generally fractional; the
schedule rounds each arrival down to its cycle, keeping the long-run rate
exact).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..router.config import RouterConfig
from .base import InjectionSchedule, TrafficSource

__all__ = ["CBR_CLASSES", "CBRClass", "CBRSource"]


@dataclass(frozen=True)
class CBRClass:
    """One of the paper's CBR bandwidth classes."""

    name: str
    rate_bps: float


#: The paper's three classes, by name.
CBR_CLASSES: dict[str, CBRClass] = {
    "low": CBRClass("low", 64e3),
    "medium": CBRClass("medium", 1.54e6),
    "high": CBRClass("high", 55e6),
}


class CBRSource(TrafficSource):
    """Deterministic constant-rate flit source with a random phase.

    ``phase`` shifts the whole arrival train (connections in a mix start
    at random offsets within one inter-arrival time, as independent
    sources would).
    """

    name = "cbr"

    def __init__(self, config: RouterConfig, rate_bps: float, phase: float = 0.0) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if rate_bps > config.link_rate_bps:
            raise ValueError(
                f"rate {rate_bps:g} bps exceeds link rate "
                f"{config.link_rate_bps:g} bps"
            )
        if phase < 0:
            raise ValueError("phase must be >= 0")
        self.config = config
        self.rate_bps = rate_bps
        #: Inter-arrival time in flit cycles (possibly fractional).
        self.iat_cycles = config.flit_size_bits / rate_bps / config.flit_cycle_seconds
        self.phase = phase

    @classmethod
    def from_class(
        cls,
        config: RouterConfig,
        cls_name: str,
        rng: np.random.Generator | None = None,
    ) -> "CBRSource":
        """Build a source for a named class with a random phase."""
        klass = CBR_CLASSES[cls_name]
        iat = config.flit_size_bits / klass.rate_bps / config.flit_cycle_seconds
        phase = float(rng.uniform(0.0, iat)) if rng is not None else 0.0
        return cls(config, klass.rate_bps, phase)

    def mean_load(self) -> float:
        return self.rate_bps / self.config.link_rate_bps

    def schedule(self, horizon: int, rng: np.random.Generator) -> InjectionSchedule:
        if horizon <= 0:
            return InjectionSchedule.empty()
        count = max(0, math.ceil((horizon - self.phase) / self.iat_cycles))
        # One extra arrival guards against float rounding at the edge.
        k = np.arange(count + 1, dtype=np.float64)
        cycles = np.floor(self.phase + k * self.iat_cycles).astype(np.int64)
        cycles = cycles[cycles < horizon]
        n = len(cycles)
        return InjectionSchedule(
            cycles=cycles,
            frame_ids=np.full(n, -1, dtype=np.int64),
            frame_last=np.zeros(n, dtype=bool),
        )
