"""Link scheduling: candidate selection.

Per physical input link, the link scheduler ranks the head flits of all
occupied virtual channels by their biased priority (see
:mod:`repro.core.priorities`) and forwards the top ``candidate_levels``
of them — the *candidates* — to the switch scheduler.  Level 0 holds the
highest-priority candidate of each link, level 1 the next, and so on;
these levels are the row blocks of the selection matrix.

Best-effort subordination: the MMR "allocates the remaining bandwidth to
best-effort traffic" (paper §1), so a reserved (CBR/VBR) head flit must
outrank *any* best-effort head flit regardless of how the biasing
function scores them.  The scheduler implements this as a class bonus
added to reserved VCs' priorities before ranking — a strict two-tier
hierarchy, while preserving biased ordering within each tier.

The selection is vectorized: one priority evaluation over the whole link's
VC vector plus an ``argpartition`` for the top-C extraction, so cost per
cycle is O(V) with small constants rather than a Python loop over VCs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .matching import Candidate
from .priorities import PriorityScheme

if TYPE_CHECKING:  # imported lazily to avoid a core <-> router cycle
    from ..router.config import RouterConfig
    from ..router.vc_memory import HeadView

__all__ = ["LinkScheduler", "RESERVED_SCALE"]

#: Multiplier that lifts every reserved (CBR/VBR) candidate above every
#: best-effort candidate.  A power of two, so the float multiply is
#: *exact* and preserves the biased ordering within the reserved tier
#: bit for bit; any reserved priority (>= 1) scaled by 2**200 exceeds
#: any unscaled best-effort priority (< 2**63).
RESERVED_SCALE = 2.0**200


class LinkScheduler:
    """Selects each input link's candidate VCs for switch scheduling."""

    def __init__(self, config: RouterConfig, scheme: PriorityScheme) -> None:
        self.config = config
        self.scheme = scheme

    def select_port(
        self,
        port: int,
        heads: HeadView,
        slots: np.ndarray,
        dests: np.ndarray,
        now: int,
        tier_scale: np.ndarray | None = None,
    ) -> list[Candidate]:
        """Candidates for one input port, ordered by level.

        Parameters
        ----------
        port:
            Input port index.
        heads:
            Head-flit view of this port's VC memory.
        slots:
            (vcs,) reserved slots per round for each VC (0 where no
            connection is established).
        dests:
            (vcs,) output port of each VC's connection (-1 where none).
        now:
            Current flit cycle; queuing delay = ``now - arrival``.
        tier_scale:
            Optional (vcs,) per-VC priority multiplier implementing the
            reserved/best-effort hierarchy (:data:`RESERVED_SCALE` for
            reserved VCs, 1.0 for best-effort).  ``None`` treats every
            VC as one tier.
        """
        occ = heads.occupancy
        eligible = np.flatnonzero(occ > 0)
        if eligible.size == 0:
            return []
        delay = now - heads.arrival_cycle[eligible]
        prio = self.scheme.compute(slots[eligible], delay).astype(np.float64)
        if tier_scale is not None:
            prio = prio * tier_scale[eligible]
        c = min(self.config.candidate_levels, eligible.size)
        if eligible.size > c:
            # Top-C by priority; stable ordering resolved by the sort below.
            top = np.argpartition(-prio, c - 1)[:c]
        else:
            top = np.arange(eligible.size)
        # Order the winners by descending priority; break ties by VC index
        # (deterministic, mirrors a fixed-priority encoder in hardware).
        order = np.lexsort((eligible[top], -prio[top]))
        ranked = top[order]
        out: list[Candidate] = []
        for level, k in enumerate(ranked):
            vc = int(eligible[k])
            out.append(
                Candidate(
                    in_port=port,
                    vc=vc,
                    out_port=int(dests[vc]),
                    priority=float(prio[k]),
                    level=level,
                )
            )
        return out

    def select_all(
        self,
        heads_per_port: Sequence[HeadView],
        slots: np.ndarray,
        dests: np.ndarray,
        now: int,
        tier_scale: np.ndarray | None = None,
    ) -> list[list[Candidate]]:
        """Candidates for every input port (per-port reference path).

        ``slots``/``dests`` are the (ports, vcs) connection-table arrays.
        """
        return [
            self.select_port(
                p,
                heads_per_port[p],
                slots[p],
                dests[p],
                now,
                tier_scale[p] if tier_scale is not None else None,
            )
            for p in range(self.config.num_ports)
        ]

    def select_batch(
        self,
        heads: HeadView,
        slots: np.ndarray,
        dests: np.ndarray,
        now: int,
        tier_scale: np.ndarray | None = None,
    ) -> list[list[Candidate]]:
        """Candidates for every input port in one vectorized pass.

        ``heads`` is the (ports, vcs)-shaped view from
        :meth:`repro.router.VCMemory.heads_all`.  Produces exactly the
        same candidates as :meth:`select_all` (a property the test suite
        asserts); it exists because evaluating the whole router in one
        numpy call chain is several times faster than per-port calls.
        """
        occ = heads.occupancy
        n, _v = occ.shape
        c = self.config.candidate_levels
        occupied = occ > 0
        delay = np.where(occupied, now - heads.arrival_cycle, 0)
        prio = self.scheme.compute(slots, delay).astype(np.float64)
        if tier_scale is not None:
            prio = prio * tier_scale
        # Mask out empty VCs with -inf so argsort never selects them.
        masked = np.where(occupied, prio, -np.inf)
        # Order each row by (-priority, vc); vc tie-break falls out of
        # stable argsort on the negated priorities.
        order = np.argsort(-masked, axis=1, kind="stable")[:, :c]
        out: list[list[Candidate]] = []
        for p in range(n):
            port_cands: list[Candidate] = []
            row = masked[p]
            for level in range(min(c, order.shape[1])):
                vc = int(order[p, level])
                if row[vc] == -np.inf:
                    break
                port_cands.append(
                    Candidate(
                        in_port=p,
                        vc=vc,
                        out_port=int(dests[p, vc]),
                        priority=float(prio[p, vc]),
                        level=level,
                    )
                )
            out.append(port_cands)
        return out
