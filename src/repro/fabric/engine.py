"""The fabric lifecycle engine: multi-hop CAC over a network of MMRs.

This is the ``SessionEngine`` pattern lifted to :class:`~repro.network.
multirouter.MultiRouterNetwork` scope:

* an arriving session's setup probe traverses its candidate path, so the
  setup completes ``setup_latency_cycles × hops`` after arrival; only
  then is admission attempted, hop by hop, via
  :meth:`MultiRouterNetwork.establish_along` — whose per-hop rollback is
  exactly the PCS probe backtracking the paper describes;
* a rejection reports *which hop* blocked; the engine then retries over
  the next alternate path from the session's policy order (blocked-at-hop
  re-admission), paying a fresh signaling delay proportional to that
  path's length, up to ``max_path_attempts`` total tries;
* a departing session drains (source NIC, every hop's VC buffer, and the
  inter-router links must empty), then tears down
  ``teardown_latency_cycles × hops`` later via the graceful
  :meth:`MultiRouterNetwork.release`.

The engine consumes **no randomness at run time** — the timeline is
precomputed and the path policies are deterministic functions of session
ids and live reservation ledgers — so fabric runs replay bit-identically
and a zero-churn engine leaves the network loop untouched.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any

import numpy as np

from ..network.multirouter import (
    MultiRouterNetwork,
    NetworkConnection,
    RouterShard,
)
from ..router.config import RouterConfig
from ..router.connection import TrafficClass
from ..sessions.metrics import SessionEventLog, SessionStats
from ..sim.engine import RngStreams
from ..sim.simulation import SimResult
from .churn import FabricSession, generate_fabric_timeline
from .paths import PathProvider, make_path_policy
from .spec import FabricSpec

if TYPE_CHECKING:
    from ..campaign.plan import PointSpec

__all__ = [
    "FABRIC_SCHEMA",
    "FabricEngine",
    "FabricSim",
    "StaticInjector",
    "build_static_load",
    "execute_fabric_point",
]

#: Stable payload schema tag (campaign ``sessions`` channel).
FABRIC_SCHEMA = "repro-fabric-v1"

_SETUP = 0
_STOP = 1
_TEARDOWN = 2

#: "No pending event" sentinel for next-event computations.
_FAR = 1 << 62


class _LiveFabricSession:
    """Runtime state of one timeline session."""

    __slots__ = ("fs", "state", "conn", "offset", "ptr", "attempt", "paths")

    def __init__(self, fs: FabricSession) -> None:
        self.fs = fs
        self.state = "setup"
        self.conn: NetworkConnection | None = None
        self.offset = 0
        self.ptr = 0
        #: Index of the next candidate path to try.
        self.attempt = 0
        self.paths: list[tuple[int, ...]] = []


class FabricEngine:
    """Drives fabric session lifecycles inside the network cycle loop."""

    def __init__(
        self,
        config: RouterConfig,
        spec: FabricSpec,
        timeline: list[FabricSession],
    ) -> None:
        self.config = config
        self.spec = spec
        self.timeline = timeline
        self.stats = SessionStats(
            policy=spec.path_policy, churn=spec.churn, cycles=0
        )
        self.event_log = SessionEventLog()
        #: admitted-path hop counts (links traversed) -> sessions.
        self.hop_histogram: dict[int, int] = {}
        #: hop index whose admission test rejected -> rejections.
        self.blocked_at_hop: dict[int, int] = {}
        #: attempts used by admitted sessions (1 = primary path).
        self.attempts_histogram: dict[int, int] = {}
        #: (cycle, mean, max, jain) reserved output-link fraction samples
        #: over every inter-router link.
        self.path_balance_series: list[tuple[int, float, float, float]] = []
        #: Static background injections (set by :class:`FabricSim`).
        self.static_injected = 0
        self.dynamic_injected = 0
        #: Sharded execution: when set, :meth:`inject` deposits flits
        #: only for sessions sourced at an owned router (pointers and
        #: counters still advance globally, so every replica's ledgers
        #: stay in lockstep).
        self.owned_routers: set[int] | None = None
        #: Sharded execution: per-cycle drain verdicts (net_conn_id ->
        #: globally-empty), AND-merged across shards at the previous
        #: barrier.  ``None`` polls :meth:`MultiRouterNetwork.
        #: connection_empty` directly (serial execution).
        self.drain_oracle: dict[int, bool] | None = None
        self._net: MultiRouterNetwork | None = None
        self._provider: PathProvider | None = None
        self._policy = None
        self._next_arrival = 0
        self._seq = 0
        self._pending: list[tuple[int, int, int, _LiveFabricSession]] = []
        self._injecting: list[_LiveFabricSession] = []
        self._draining: list[_LiveFabricSession] = []
        self._live = [_LiveFabricSession(fs) for fs in timeline]

    # ------------------------------------------------------------------
    # Loop hooks
    # ------------------------------------------------------------------

    def begin(self, net: MultiRouterNetwork, cycles: int) -> None:
        self._net = net
        self._provider = PathProvider(net.topology, self.spec.k_paths)
        self._policy = make_path_policy(self.spec.path_policy)
        self.stats.cycles = cycles

    def _push(self, cycle: int, kind: int, live: _LiveFabricSession) -> None:
        heapq.heappush(self._pending, (cycle, self._seq, kind, live))
        self._seq += 1

    def _signaling_cycles(self, latency: int, path: tuple[int, ...]) -> int:
        """Hop-proportional signaling delay (the probe walks the path)."""
        return latency * max(1, len(path) - 1)

    def on_cycle(self, now: int) -> None:
        pending = self._pending
        while pending and pending[0][0] <= now:
            _cycle, _seq, kind, live = heapq.heappop(pending)
            if kind == _SETUP:
                self._complete_setup(now, live)
            elif kind == _STOP:
                self._stop_injection(now, live)
            else:
                self._complete_teardown(now, live)
        timeline = self._live
        i = self._next_arrival
        sig = self.spec.signaling
        while i < len(timeline) and timeline[i].fs.spec.arrival_cycle <= now:
            live = timeline[i]
            i += 1
            fs = live.fs
            spec = fs.spec
            self.stats.note_offered(spec)
            self.event_log.record(
                now,
                "arrive",
                spec.sid,
                f"class={spec.cls_name} route={fs.src_router}:{spec.in_port}"
                f"->{fs.dst_router}:{spec.out_port} hold={spec.hold_cycles}",
            )
            paths = self._provider.paths(fs.src_router, fs.dst_router)
            order = self._policy.order(paths, spec.sid, self._net)
            live.paths = [
                paths[idx] for idx in order[: self.spec.max_path_attempts]
            ]
            self._push(
                now
                + self._signaling_cycles(
                    sig.setup_latency_cycles, live.paths[0]
                ),
                _SETUP,
                live,
            )
        self._next_arrival = i
        if self._draining:
            self._poll_drains(now)
        if now % self.spec.sample_stride == 0:
            self._sample_path_balance(now)

    def inject(self, now: int) -> int:
        """Deposit every due flit of every active session into its NIC.

        With :attr:`owned_routers` set, sessions sourced at non-owned
        routers advance their pointers and the (replicated) injected
        counter without touching any NIC — the owning shard performs the
        actual deposit, every other replica just keeps ledger lockstep.
        """
        lst = self._injecting
        keep = 0
        deposited = 0
        routers = self._net.routers
        owned = self.owned_routers
        for live in lst:
            spec = live.fs.spec
            cycles = spec.cycles
            end = len(cycles)
            ptr = live.ptr
            off = live.offset
            deposit = owned is None or live.fs.src_router in owned
            nic = routers[live.fs.src_router].nics[spec.in_port]
            vc = live.conn.hops[0].vc
            while ptr < end and cycles[ptr] + off <= now:
                if deposit:
                    nic.inject(
                        vc,
                        int(cycles[ptr] + off),
                        int(spec.frame_ids[ptr]),
                        bool(spec.frame_last[ptr]),
                    )
                ptr += 1
            deposited += ptr - live.ptr
            live.ptr = ptr
            if ptr < end:
                lst[keep] = live
                keep += 1
        del lst[keep:]
        self.dynamic_injected += deposited
        return deposited

    def next_event_cycle(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which the engine can act.

        The engine half of the event-skipping fold: when the network is
        idle, the loop may fast-forward to the minimum over pending
        signaling completions, the next timeline arrival, the next due
        dynamic injection, and the next path-balance sample — draining
        sessions pin the result to ``now`` (they are polled every
        cycle).  Skipped cycles are provably no-ops for
        :meth:`on_cycle`/:meth:`inject`.
        """
        if self._draining:
            return now
        nxt = _FAR
        if self._pending:
            c = self._pending[0][0]
            if c < nxt:
                nxt = c
        if self._next_arrival < len(self._live):
            c = self._live[self._next_arrival].fs.spec.arrival_cycle
            if c < nxt:
                nxt = c
        for live in self._injecting:
            c = int(live.fs.spec.cycles[live.ptr]) + live.offset
            if c < nxt:
                nxt = c
        stride = self.spec.sample_stride
        next_sample = ((now + stride - 1) // stride) * stride
        if next_sample < nxt:
            nxt = next_sample
        return now if nxt < now else nxt

    def drain_candidates(self, horizon: int) -> list[NetworkConnection]:
        """Connections whose drain verdict the next barrier must carry.

        Covers the currently draining set plus every active session
        whose stop event fires at or before ``horizon`` — a session can
        enter "draining" and be polled in the same cycle, so its
        verdict must already be on the wire when that cycle runs.
        """
        conns = [live.conn for live in self._draining]
        for cycle, _seq, kind, live in self._pending:
            if kind == _STOP and cycle <= horizon and live.state == "active":
                conns.append(live.conn)
        return conns

    def finish(self) -> None:
        """Close out the run: count survivors, audit every ledger."""
        self.stats.expired_active = sum(
            1
            for live in self._live
            if live.state in ("active", "draining", "closing", "setup")
            and live.fs.spec.arrival_cycle < self.stats.cycles
        )
        net = self._net
        if net is not None:
            for router in net.routers:
                router.admission.audit(router.table)

    # ------------------------------------------------------------------
    # Completion handlers
    # ------------------------------------------------------------------

    def _complete_setup(self, now: int, live: _LiveFabricSession) -> None:
        fs = live.fs
        spec = fs.spec
        path = live.paths[live.attempt]
        conn, blocked_hop = self._net.establish_along(
            list(path),
            spec.traffic_class,
            spec.avg_slots,
            spec.peak_slots,
            src_port=spec.in_port,
            dst_port=spec.out_port,
        )
        if conn is not None:
            self._admit(now, live, conn)
            return
        self.blocked_at_hop[blocked_hop] = (
            self.blocked_at_hop.get(blocked_hop, 0) + 1
        )
        self.event_log.record(
            now,
            "block-hop",
            spec.sid,
            f"hop={blocked_hop} router={path[blocked_hop]} "
            f"path={'-'.join(map(str, path))} attempt={live.attempt + 1}",
        )
        live.attempt += 1
        if live.attempt < len(live.paths):
            alt = live.paths[live.attempt]
            self.event_log.record(
                now,
                "retry-path",
                spec.sid,
                f"path={'-'.join(map(str, alt))} attempt={live.attempt + 1}",
            )
            self._push(
                now
                + self._signaling_cycles(
                    self.spec.signaling.setup_latency_cycles, alt
                ),
                _SETUP,
                live,
            )
            return
        live.state = "blocked"
        self.stats.note_blocked(spec)
        self.event_log.record(
            now,
            "block",
            spec.sid,
            f"class={spec.cls_name} attempts={live.attempt}",
        )

    def _admit(
        self, now: int, live: _LiveFabricSession, conn: NetworkConnection
    ) -> None:
        fs = live.fs
        spec = fs.spec
        live.state = "active"
        live.conn = conn
        live.offset = now
        self.stats.note_admitted(spec)
        hops = conn.num_hops - 1  # links traversed
        self.hop_histogram[hops] = self.hop_histogram.get(hops, 0) + 1
        attempts = live.attempt + 1
        self.attempts_histogram[attempts] = (
            self.attempts_histogram.get(attempts, 0) + 1
        )
        if live.attempt > 0:
            self.stats.readmitted_alt += 1
        detail = (
            f"class={spec.cls_name} conn={conn.net_conn_id} "
            f"path={'-'.join(map(str, conn.router_path))} "
            f"avg={conn.avg_slots} peak={conn.peak_slots}"
        )
        if live.attempt > 0:
            detail += f" alt_attempt={attempts}"
        self.event_log.record(now, "admit", spec.sid, detail)
        if len(spec.cycles):
            self._injecting.append(live)
        self._push(now + spec.hold_cycles, _STOP, live)

    def _stop_injection(self, now: int, live: _LiveFabricSession) -> None:
        if live.state != "active":
            return
        live.state = "draining"
        self.event_log.record(
            now, "depart", live.fs.spec.sid, f"conn={live.conn.net_conn_id}"
        )
        self._draining.append(live)

    def _poll_drains(self, now: int) -> None:
        net = self._net
        sig = self.spec.signaling
        oracle = self.drain_oracle
        keep = []
        for live in self._draining:
            if (
                net.connection_empty(live.conn)
                if oracle is None
                else oracle[live.conn.net_conn_id]
            ):
                live.state = "closing"
                self._push(
                    now
                    + self._signaling_cycles(
                        sig.teardown_latency_cycles,
                        live.conn.router_path,
                    ),
                    _TEARDOWN,
                    live,
                )
            else:
                keep.append(live)
        self._draining = keep

    def _complete_teardown(self, now: int, live: _LiveFabricSession) -> None:
        if live.state != "closing":
            return
        conn = live.conn
        self._net.release(conn)
        live.state = "closed"
        self.stats.note_released(live.fs.spec)
        self.event_log.record(
            now,
            "release",
            live.fs.spec.sid,
            f"conn={conn.net_conn_id} hops={conn.num_hops}",
        )

    # ------------------------------------------------------------------
    # Path-balance sampling
    # ------------------------------------------------------------------

    def _sample_path_balance(self, now: int) -> None:
        net = self._net
        loads = [
            net.routers[u].admission.reserved_avg_load_out(port)
            for (u, _v), port in net.topology.port_map.items()
        ]
        n = len(loads)
        total = sum(loads)
        sumsq = sum(x * x for x in loads)
        jain = (total * total) / (n * sumsq) if sumsq > 0 else 1.0
        self.path_balance_series.append(
            (now, total / n if n else 0.0, max(loads, default=0.0), jain)
        )

    # ------------------------------------------------------------------
    # Payload
    # ------------------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """Strict-JSON payload for the campaign ``sessions`` channel."""
        payload = self.stats.to_payload(self.event_log)
        payload["schema"] = FABRIC_SCHEMA
        payload["topology"] = self.spec.topology.to_dict()
        payload["path_policy"] = self.spec.path_policy
        admitted = self.stats.admitted
        total_hops = sum(h * n for h, n in self.hop_histogram.items())
        payload["hops"] = {
            "mean": total_hops / admitted if admitted else None,
            "histogram": {
                str(h): n for h, n in sorted(self.hop_histogram.items())
            },
        }
        payload["blocked_at_hop"] = {
            str(h): n for h, n in sorted(self.blocked_at_hop.items())
        }
        payload["path_attempts"] = {
            "histogram": {
                str(a): n for a, n in sorted(self.attempts_histogram.items())
            },
            "readmitted_alt": self.stats.readmitted_alt,
        }
        final = (
            self.path_balance_series[-1]
            if self.path_balance_series
            else (0, 0.0, 0.0, 1.0)
        )
        payload["path_balance"] = {
            "series": [list(row) for row in self.path_balance_series],
            "final": {
                "mean": final[1],
                "max": final[2],
                "jain": final[3],
            },
        }
        net = self._net
        n, total, mx = net.delay_summary()
        payload["network"] = {
            "static_injected": self.static_injected,
            "dynamic_injected": self.dynamic_injected,
            "delivered": net.delivered,
            "lost_flits": net.lost_flits,
            "residue": net.total_buffered(),
            "released_connections": net.released_connections,
            "dropped_connections": net.dropped_connections,
            "delay_mean_cycles": total / n if n else None,
            "delay_max_cycles": mx if n else None,
        }
        return payload


# ----------------------------------------------------------------------
# Static background (the legacy network load experiment, made seedable)
# ----------------------------------------------------------------------


def build_static_load(
    net: MultiRouterNetwork,
    conns_per_router: int,
    target_load: float,
    cycles: int,
    rng: np.random.Generator,
) -> tuple[list[NetworkConnection], list[np.ndarray]]:
    """Random-destination CBR background with precomputed trains.

    The fabric twin of the legacy ``run_network_load`` builder: placement
    and phases draw from the given stream (the campaign's ``workload``
    role), so static fabric points are reproducible by spec.
    """
    if conns_per_router == 0:
        return [], []
    if not (0 < target_load < 1):
        raise ValueError("target_load must be in (0, 1) for a static load")
    routers = net.topology.num_routers
    per_conn_load = target_load / conns_per_router
    slots = max(1, round(per_conn_load * net.config.round_cycles))
    conns: list[NetworkConnection] = []
    for src in range(routers):
        placed = 0
        guard = 0
        while placed < conns_per_router and guard < 50 * conns_per_router:
            guard += 1
            dst = int(rng.integers(routers))
            if dst == src:
                continue
            conn = net.establish(src, dst, TrafficClass.CBR, avg_slots=slots)
            if conn is not None:
                conns.append(conn)
                placed += 1
    iat = 1.0 / per_conn_load
    schedules = []
    for _conn in conns:
        phase = rng.uniform(0, iat)
        times = np.floor(phase + np.arange(int(cycles / iat) + 1) * iat)
        schedules.append(times[times < cycles].astype(np.int64))
    return conns, schedules


class StaticInjector:
    """Cursor state for the static background schedules.

    One implementation shared by the serial loop and the shard runtime:
    deposits walk connections in list order (the legacy inline order),
    the injected counter advances globally in every replica, and with
    ``owned`` set only connections sourced at an owned router actually
    touch a NIC.
    """

    def __init__(
        self,
        net: MultiRouterNetwork,
        conns: list[NetworkConnection],
        schedules: list[np.ndarray],
        owned: set[int] | None = None,
    ) -> None:
        self.net = net
        self.conns = conns
        self.schedules = schedules
        self.pointers = [0] * len(conns)
        self.owned = owned
        self.injected = 0

    def inject(self, now: int) -> None:
        net = self.net
        owned = self.owned
        pointers = self.pointers
        for idx, conn in enumerate(self.conns):
            times = self.schedules[idx]
            ptr = pointers[idx]
            end = len(times)
            if ptr >= end or times[ptr] > now:
                continue
            deposit = owned is None or conn.src_router in owned
            while ptr < end and times[ptr] <= now:
                if deposit:
                    net.inject(conn, gen_cycle=now)
                self.injected += 1
                ptr += 1
            pointers[idx] = ptr

    def next_due(self, default: int) -> int:
        """Earliest pending schedule cycle across all connections."""
        nxt = default
        pointers = self.pointers
        for idx, times in enumerate(self.schedules):
            ptr = pointers[idx]
            if ptr < len(times):
                c = int(times[ptr])
                if c < nxt:
                    nxt = c
        return nxt


# ----------------------------------------------------------------------
# The fabric simulation
# ----------------------------------------------------------------------


class FabricSim:
    """Builds and runs one fabric instance: topology, network, engine."""

    def __init__(
        self,
        fabric: FabricSpec,
        config: RouterConfig,
        arbiter: str = "coa",
        scheme: str = "siabp",
        seed: int = 0,
        skip_idle: bool = False,
    ) -> None:
        self.fabric = fabric
        self.config = config
        self.arbiter = arbiter
        self.scheme = scheme
        self.seed = seed
        self.rng = RngStreams(seed)
        self.topology = fabric.topology.build()
        per_router = fabric.rng_mode == "per-router"
        self.net = MultiRouterNetwork(
            self.topology,
            config,
            arbiter=arbiter,
            scheme=scheme,
            per_router_stats=per_router,
        )
        #: Per-router stepping core (``rng_mode="per-router"`` only) —
        #: the serial reference the sharded coordinator is checked
        #: against, sharing the exact stepping code the shards run.
        self.shard_core = RouterShard(self.net, seed) if per_router else None
        #: Event-skipping fold: fast-forward provably idle stretches
        #: (bit-identity gated by the skip twin tests).
        self.skip_idle = skip_idle
        self.skipped_cycles = 0
        self.engine: FabricEngine | None = None

    @property
    def host_port_count(self) -> int:
        topo = self.topology
        return sum(
            self.config.num_ports - topo.degree(r)
            for r in range(topo.num_routers)
        )

    def run(self, target_load: float, cycles: int) -> SimResult:
        """Run the fabric for ``cycles`` and summarise as a SimResult.

        The cycle order matches the single-router sessions loop: engine
        signaling/arrivals, dynamic injections, static injections, then
        the network step.  A zero-churn spec leaves the first two as
        no-ops (no RNG draws, no network mutations), which is the
        zero-churn bit-identity contract.
        """
        fab = self.fabric
        net = self.net
        timeline = generate_fabric_timeline(
            self.topology,
            fab.topology.host_routers(),
            self.config,
            fab.churn,
            cycles,
            self.rng.sessions,
        )
        engine = FabricEngine(self.config, fab, timeline)
        engine.begin(net, cycles)
        self.engine = engine
        static_conns, schedules = build_static_load(
            net, fab.conns_per_router, target_load, cycles, self.rng.workload
        )
        static = StaticInjector(net, static_conns, schedules)
        core = self.shard_core
        arb = self.rng.arbiter
        skipping = self.skip_idle
        now = 0
        while now < cycles:
            engine.on_cycle(now)
            engine.inject(now)
            static.inject(now)
            if core is not None:
                core.step(now)
            else:
                net.step(now, arb)
            now += 1
            if skipping and now < cycles and net.shard_idle():
                target = min(
                    cycles,
                    engine.next_event_cycle(now),
                    static.next_due(cycles),
                    net.next_delivery_cycle(cycles),
                )
                if target > now:
                    net.fast_forward(target - now)
                    self.skipped_cycles += target - now
                    now = target
        if fab.drain:
            now = cycles
            while net.total_buffered() > 0 and now < cycles * 3:
                if core is not None:
                    core.step(now)
                else:
                    net.step(now, arb)
                now += 1
        engine.static_injected = static.injected
        engine.finish()
        return self._summarise(target_load, cycles, static.injected)

    def _summarise(
        self, target_load: float, cycles: int, static_injected: int
    ) -> SimResult:
        net = self.net
        engine = self.engine
        ports = self.host_port_count
        injected = static_injected + engine.dynamic_injected
        denom = cycles * ports
        n, total, _mx = net.delay_summary()
        nan = float("nan")
        delay_us = (
            self.config.cycles_to_us(total / n) if n else nan
        )
        fault: dict[str, int] = {}
        for key, value in (
            ("lost_flits", net.lost_flits),
            ("dropped_connections", net.dropped_connections),
            ("rerouted", net.rerouted),
        ):
            if value:
                fault[key] = value
        return SimResult(
            config=self.config,
            arbiter=self.arbiter,
            scheme=self.scheme,
            seed=self.seed,
            cycles=cycles,
            warmup_cycles=0,
            offered_load=injected / denom if denom else nan,
            utilization=nan,
            throughput=net.delivered / denom if denom else nan,
            flit_delay_us={"overall": delay_us},
            flit_delay_p99_us={},
            frame_delay_us={},
            jitter_us={},
            flits={"overall": net.delivered},
            frames={},
            backlog=net.total_buffered(),
            connections=len(net.connections),
            fault=fault,
        )

    def fingerprint(self) -> str:
        return self.rng.state_fingerprint()

    def router_fingerprints(self) -> dict[str, str]:
        """Per-router arbiter-stream fingerprints (per-router mode only)."""
        if self.shard_core is None:
            return {}
        return self.shard_core.router_fingerprints()


def execute_fabric_point(spec: "PointSpec") -> tuple[SimResult, FabricEngine]:
    """Run one fabric campaign point.  THE definition of fabric-point
    semantics (the fabric analogue of ``execute_point``)."""
    if spec.fabric is None:
        raise ValueError("execute_fabric_point needs a spec with fabric set")
    sim = FabricSim(
        spec.fabric,
        spec.config,
        arbiter=spec.arbiter,
        scheme=spec.scheme,
        seed=spec.seed,
    )
    result = sim.run(spec.target_load, spec.cycles)
    return result, sim.engine
