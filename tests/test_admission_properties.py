"""Hypothesis property tests for admission control.

Invariant: under any sequence of admissions and releases, (a) committed
average reservations never exceed the round on any link, (b) committed
VBR peaks never exceed round x concurrency, and (c) releasing everything
returns the controller to a pristine state.

The second half drives the same invariants through the *full* stack —
``MMRouter.establish`` behind the adaptive CAC filter, fault-path
``force_teardown`` + :func:`readmit_elsewhere` migrations, and ordinary
teardowns — under random interleavings: the paper bound must hold on the
integer ledgers after every step, and undoing everything must restore
the reservation vectors exactly.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.control.config import ControlConfig
from repro.control.plane import ControlFeedback, ControlPlane
from repro.router.admission import AdmissionController
from repro.router.config import RouterConfig
from repro.router.connection import Connection, TrafficClass
from repro.router.router import MMRouter
from repro.sessions.policies import CacRequest, make_policy
from repro.sessions.signaling import readmit_elsewhere

CONFIG = RouterConfig(
    num_ports=3,
    vcs_per_link=64,
    candidate_levels=1,
    flit_cycles_per_round=64 * 4,
    concurrency_factor=3.0,
)
ROUND = CONFIG.round_cycles


@st.composite
def requests(draw):
    tclass = draw(st.sampled_from(list(TrafficClass)))
    avg = draw(st.integers(1, ROUND))
    if tclass is TrafficClass.VBR:
        peak = draw(st.integers(avg, int(ROUND * CONFIG.concurrency_factor)))
    else:
        peak = avg
    return (
        tclass,
        avg,
        peak,
        draw(st.integers(0, CONFIG.num_ports - 1)),
        draw(st.integers(0, CONFIG.num_ports - 1)),
    )


@settings(max_examples=80, deadline=None)
@given(ops=st.lists(requests(), min_size=1, max_size=60),
       release_mask=st.lists(st.booleans(), min_size=60, max_size=60))
def test_admission_never_overcommits(ops, release_mask):
    ac = AdmissionController(CONFIG)
    committed: list[Connection] = []
    next_id = 0
    for i, (tclass, avg, peak, in_port, out_port) in enumerate(ops):
        conn = Connection(next_id, in_port, 0, out_port, tclass, avg, peak)
        decision = ac.check(conn)
        if decision:
            ac.commit(conn)
            committed.append(conn)
            next_id += 1
        # Occasionally release an old reservation.
        if committed and release_mask[i % len(release_mask)]:
            ac.release(committed.pop(0))

        # Invariants over the *currently committed* set, per link.
        for port in range(CONFIG.num_ports):
            avg_in = sum(c.avg_slots for c in committed
                         if c.in_port == port and c.is_reserved)
            avg_out = sum(c.avg_slots for c in committed
                          if c.out_port == port and c.is_reserved)
            assert avg_in <= ROUND
            assert avg_out <= ROUND
            peak_in = sum(c.peak_slots for c in committed
                          if c.in_port == port
                          and c.traffic_class is TrafficClass.VBR)
            assert peak_in <= ROUND * CONFIG.concurrency_factor
            # Controller's own accounting agrees with the ground truth.
            assert ac.reserved_avg_load(port) * ROUND == avg_in

    # Release everything: pristine state, a full-round request fits again.
    for conn in committed:
        ac.release(conn)
    probe = Connection(99_999, 0, 1, 1, TrafficClass.CBR, ROUND, ROUND)
    assert ac.check(probe)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_check_never_mutates(seed):
    """check() must be side-effect free regardless of outcome."""
    rng = np.random.default_rng(seed)
    ac = AdmissionController(CONFIG)
    baseline = Connection(0, 0, 0, 1, TrafficClass.CBR, ROUND // 2, ROUND // 2)
    ac.commit(baseline)
    before = [ac.reserved_avg_load(p) for p in range(CONFIG.num_ports)]
    for i in range(10):
        conn = Connection(
            i + 1, int(rng.integers(3)), 0, int(rng.integers(3)),
            TrafficClass.VBR, int(rng.integers(1, ROUND + 1)),
            int(rng.integers(ROUND, 3 * ROUND + 1)),
        )
        ac.check(conn)
    after = [ac.reserved_avg_load(p) for p in range(CONFIG.num_ports)]
    assert before == after


# ----------------------------------------------------------------------
# Full-stack churn + faults + adaptive CAC
# ----------------------------------------------------------------------

PEAK_BUDGET = ROUND * CONFIG.concurrency_factor


@st.composite
def churn_fault_ops(draw):
    """A random interleaving of arrivals, departures, faults and pressure."""
    kinds = st.sampled_from(
        ["arrive", "arrive", "depart", "fault-kill", "fault-migrate",
         "pressure"]
    )
    ops = []
    for _ in range(draw(st.integers(5, 40))):
        kind = draw(kinds)
        if kind == "arrive":
            ops.append(("arrive", draw(requests())))
        elif kind == "pressure":
            ops.append(("pressure", draw(st.floats(0.0, 8.0))))
        else:
            ops.append((kind, draw(st.integers(0, 2**20))))
    return ops


def assert_paper_bound(router):
    """The paper admission bound, read off the integer ledgers."""
    vectors = router.admission.reservation_vectors()
    assert max(vectors["avg_in"]) <= ROUND
    assert max(vectors["avg_out"]) <= ROUND
    assert max(vectors["peak_in"]) <= PEAK_BUDGET
    assert max(vectors["peak_out"]) <= PEAK_BUDGET
    router.admission.audit(router.table)


@settings(max_examples=40, deadline=None)
@given(ops=churn_fault_ops())
def test_churn_faults_adaptive_cac_never_exceed_paper_bound(ops):
    """No interleaving of churn, faults and brake states overcommits.

    The adaptive policy is a pre-admission *filter*: whatever the
    hysteresis band says, every admission still runs the paper
    feasibility test inside ``MMRouter.establish``, and every fault-path
    migration goes through :func:`readmit_elsewhere` (check + commit,
    never around it).
    """
    router = MMRouter(CONFIG)
    plane = ControlPlane(CONFIG, ControlConfig(hold_cycles=8))
    feedback = ControlFeedback(plane)
    policy = make_policy("adaptive")
    pristine = router.admission.reservation_vectors()
    live = []
    now = 0
    for op in ops:
        now += 4
        kind = op[0]
        if kind == "arrive":
            tclass, avg, peak, in_port, out_port = op[1]
            request = CacRequest(
                in_port=in_port, out_port=out_port, traffic_class=tclass,
                avg_slots=avg, peak_slots=peak,
            )
            if policy.decide(request, router.admission, feedback, now):
                result = router.establish(
                    in_port, out_port, tclass, avg, peak
                )
                if result.accepted:
                    live.append(result.connection)
        elif kind == "pressure":
            plane.band.observe(now, op[1])
        elif kind == "depart" and live:
            conn = live.pop(op[1] % len(live))
            router.teardown(conn.conn_id)
        elif kind == "fault-kill" and live:
            conn = live.pop(op[1] % len(live))
            router.force_teardown(conn.conn_id)
        elif kind == "fault-migrate" and live:
            conn = live.pop(op[1] % len(live))
            router.force_teardown(conn.conn_id)
            result = readmit_elsewhere(
                router, conn, avoid_out_port=op[1] % CONFIG.num_ports
            )
            if result.accepted:
                live.append(result.connection)
        assert_paper_bound(router)
    # Undo everything that survived: the vectors must return to the
    # pristine state exactly (integer equality, no drift).
    for conn in live:
        router.teardown(conn.conn_id)
    assert router.admission.reservation_vectors() == pristine
    router.admission.audit(router.table)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_reservation_vectors_restored_exactly_around_baseline(seed):
    """A give-up/migration burst leaves a standing baseline untouched."""
    rng = np.random.default_rng(seed)
    router = MMRouter(CONFIG)
    baseline = []
    for port in range(CONFIG.num_ports):
        result = router.establish(
            port, (port + 1) % CONFIG.num_ports, TrafficClass.CBR,
            ROUND // 4, ROUND // 4,
        )
        assert result.accepted
        baseline.append(result.connection)
    snapshot = router.admission.reservation_vectors()

    burst = []
    for _ in range(int(rng.integers(1, 12))):
        tclass = TrafficClass.VBR if rng.random() < 0.5 else TrafficClass.CBR
        avg = int(rng.integers(1, ROUND // 4))
        peak = int(rng.integers(avg, ROUND)) if tclass is TrafficClass.VBR else avg
        result = router.establish(
            int(rng.integers(CONFIG.num_ports)),
            int(rng.integers(CONFIG.num_ports)),
            tclass, avg, peak,
        )
        if result.accepted:
            burst.append(result.connection)
    # Migrate a random subset the way the fault path does.
    migrated = []
    for conn in burst:
        if rng.random() < 0.5:
            router.force_teardown(conn.conn_id)
            result = readmit_elsewhere(router, conn)
            if result.accepted:
                migrated.append(result.connection)
        else:
            migrated.append(conn)
        assert_paper_bound(router)
    for conn in migrated:
        router.teardown(conn.conn_id)

    assert router.admission.reservation_vectors() == snapshot
    router.admission.audit(router.table)
    # The baseline is still live and intact in the table.
    for conn in baseline:
        assert router.table.get(conn.conn_id) == conn
