#!/usr/bin/env python3
"""Walkthrough of the Candidate-Order Arbiter on a concrete matrix (Fig. 3).

Builds a 4x4, two-level selection matrix by hand, prints it with its
conflict vector in the layout of the paper's Fig. 3, and then replays the
COA's decision sequence (port ordering -> arbitration -> drop ->
recompute) step by step so the algorithm can be read off the output.

Run:  python examples/selection_matrix_demo.py
"""

import numpy as np

from repro.core import Candidate, CandidateOrderArbiter, SelectionMatrix

N, LEVELS = 4, 2

#: (in_port, vc, out_port, priority, level) — a contended scenario:
#: out0 is hot (three level-0 requesters), out2 has a lone requester.
CANDIDATES = [
    [Candidate(0, 0, 0, 96.0, 0), Candidate(0, 1, 1, 40.0, 1)],
    [Candidate(1, 0, 0, 80.0, 0), Candidate(1, 1, 3, 12.0, 1)],
    [Candidate(2, 0, 0, 64.0, 0), Candidate(2, 1, 1, 30.0, 1)],
    [Candidate(3, 0, 2, 8.0, 0)],
]


def main() -> None:
    matrix = SelectionMatrix.from_candidates(CANDIDATES, N, LEVELS)
    print("Selection matrix (rows: output x candidate level; cells: priority)")
    print(matrix.render())
    print()

    coa = CandidateOrderArbiter(N, LEVELS)
    rng = np.random.default_rng(0)

    print("COA decision sequence:")
    step = 1
    while matrix.has_requests():
        level, out_port = coa._next_output(matrix, rng)
        requests = matrix.row_requests(level, out_port)
        in_port, vc = coa._grant(matrix, level, out_port, rng)
        contenders = ", ".join(
            f"in{i}(prio {p:g})" for i, _v, p in requests
        )
        print(
            f"  step {step}: serve out{out_port} at level {level} "
            f"(fewest conflicts among lowest level); contenders: {contenders}"
            f" -> grant in{in_port} (highest priority)"
        )
        matrix.drop_input(in_port)
        matrix.drop_output(out_port)
        step += 1

    print()
    grants = coa.match(CANDIDATES, np.random.default_rng(0))
    print("Final matching:", ", ".join(f"in{i}->out{o}" for i, _v, o in grants))
    print(
        "\nNote how the lone request for out2 is served first (least "
        "conflicts), the hot output goes to the highest-priority input, "
        "and a level-0 loser recovers through its level-1 candidate."
    )


if __name__ == "__main__":
    main()
