"""Worker-side shard runtime: replicated control plane, owned data plane.

Each worker rebuilds the **entire** fabric from plain data — topology,
timeline, engine, static background — exactly as the serial
:class:`~repro.fabric.engine.FabricSim` does, in the same RNG draw
order.  Only the *data plane* is restricted to the worker's owned router
group:

* control operations (session arrivals, CAC admission along full paths,
  releases, ledgers, the event log, path-balance samples) execute
  identically in every replica, because they are deterministic functions
  of the spec and seed and consume no run-time randomness;
* flit injection, router stepping, and delay/loss accounting touch only
  owned routers, with boundary flits/credits accumulated in egress
  buffers that the coordinator exchanges at cycle barriers.

The byte-identity argument: owned groups partition the routers, every
router draws from its own ``(seed, router_id)``-keyed arbiter stream
(:func:`repro.sim.engine.router_rng`), and boundary deliveries are
merged in canonical order — so the union of all workers' data planes
replays the serial per-router reference exactly, flit for flit and draw
for draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..fabric.churn import generate_fabric_timeline
from ..fabric.engine import FabricEngine, StaticInjector, build_static_load
from ..fabric.spec import FabricSpec
from ..router.config import RouterConfig
from ..network.multirouter import MultiRouterNetwork, RouterShard
from ..sim.engine import RngStreams

__all__ = ["ShardTask", "ShardRuntime"]

_FAR = 1 << 62


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker needs to rebuild its replica (plain data)."""

    fabric: FabricSpec
    config: RouterConfig
    arbiter: str
    scheme: str
    seed: int
    target_load: float
    cycles: int


class ShardRuntime:
    """One worker's replica: full control plane + owned data plane."""

    def __init__(self, task: ShardTask, owned: tuple[int, ...], rank: int):
        self.task = task
        self.rank = rank
        self.owned = frozenset(owned)
        # Build order mirrors FabricSim exactly: RngStreams, topology,
        # network, per-router streams, timeline (sessions stream),
        # engine, static background (workload stream).  Every replica
        # draws the same sequence from every stream, which the
        # coordinator asserts via cross-worker stream fingerprints.
        self.rng = RngStreams(task.seed)
        self.topology = task.fabric.topology.build()
        self.net = MultiRouterNetwork(
            self.topology,
            task.config,
            arbiter=task.arbiter,
            scheme=task.scheme,
            owned=self.owned,
            per_router_stats=True,
        )
        self.core = RouterShard(self.net, task.seed)
        timeline = generate_fabric_timeline(
            self.topology,
            task.fabric.topology.host_routers(),
            task.config,
            task.fabric.churn,
            task.cycles,
            self.rng.sessions,
        )
        self.engine = FabricEngine(task.config, task.fabric, timeline)
        self.engine.begin(self.net, task.cycles)
        self.engine.owned_routers = set(self.owned)
        # Sharded drain verdicts always come from the barrier-merged
        # oracle; an empty dict (instead of None) makes a missing
        # verdict a loud KeyError rather than a silent local poll.
        self.engine.drain_oracle = {}
        static_conns, schedules = build_static_load(
            self.net,
            task.fabric.conns_per_router,
            task.target_load,
            task.cycles,
            self.rng.workload,
        )
        self.static = StaticInjector(
            self.net, static_conns, schedules, owned=set(self.owned)
        )
        #: Next cycle to execute.
        self.now = 0
        self.skipped_cycles = 0

    # ------------------------------------------------------------------
    # Window execution
    # ------------------------------------------------------------------

    def apply_barrier(
        self,
        flits: list[tuple],
        credits: list[tuple],
        oracle: dict[int, bool],
    ) -> None:
        """Land one barrier's imports and drain verdicts."""
        self.core.apply_imports(flits, credits)
        self.engine.drain_oracle = dict(oracle)

    def run_window(self, start: int, end: int) -> None:
        """Execute cycles ``[start, end)`` of the measured run.

        The body is the serial :meth:`FabricSim.run` loop verbatim —
        engine signaling/arrivals, dynamic injections, static
        injections, owned-router step — plus the event-skipping
        fast-forward whenever the shard goes idle, bounded by the
        window end (idle skips are state-identical to stepping quiet
        cycles, so sharded and serial runs need not skip in lockstep).
        """
        if start != self.now:
            raise RuntimeError(
                f"window starts at {start}, worker {self.rank} is at {self.now}"
            )
        engine = self.engine
        static = self.static
        net = self.net
        core = self.core
        now = start
        while now < end:
            engine.on_cycle(now)
            engine.inject(now)
            static.inject(now)
            core.step(now)
            now += 1
            if now < end and net.shard_idle():
                target = min(
                    end,
                    engine.next_event_cycle(now),
                    static.next_due(end),
                    net.next_delivery_cycle(end),
                )
                if target > now:
                    net.fast_forward(target - now)
                    self.skipped_cycles += target - now
                    now = target
        self.now = end

    def run_drain_window(self, start: int, end: int) -> None:
        """Execute post-horizon drain cycles (network step only, as the
        serial drain loop does — the engine is not consulted)."""
        if start != self.now:
            raise RuntimeError(
                f"drain window starts at {start}, worker {self.rank} "
                f"is at {self.now}"
            )
        for now in range(start, end):
            self.core.step(now)
        self.now = end

    # ------------------------------------------------------------------
    # Barrier payloads
    # ------------------------------------------------------------------

    def _locally_empty(self, conn, flushed_flits: list[tuple]) -> bool:
        """No flit of ``conn`` in this worker's owned state or its
        just-flushed egress (those flits are the coordinator's until the
        next window, but they are still *this* connection's flits)."""
        if not self.net.connection_empty(conn):
            return False
        if flushed_flits:
            live = self.net._connections[conn.net_conn_id]
            keys = {
                (live.router_path[i], hop.in_port, hop.vc)
                for i, hop in enumerate(live.hops)
            }
            for rec in flushed_flits:
                # rec = (arrival, router, in_port, vc, gen, fid, flast)
                if (rec[1], rec[2], rec[3]) in keys:
                    return False
        return True

    def barrier_payload(self) -> dict[str, Any]:
        """Flush egress and report this worker's view at ``self.now``."""
        net = self.net
        flits, credits = net.flush_egress()
        digest = {
            conn.net_conn_id: self._locally_empty(conn, flits)
            for conn in self.engine.drain_candidates(self.now)
        }
        idle = net.shard_idle()
        if idle:
            next_event = min(
                self.engine.next_event_cycle(self.now),
                self.static.next_due(_FAR),
                net.next_delivery_cycle(_FAR),
            )
        else:
            next_event = self.now
        return {
            "rank": self.rank,
            "flits": flits,
            "credits": credits,
            "digest": digest,
            "idle": idle,
            "next_event": next_event,
            "buffered": net.local_buffered(),
        }

    # ------------------------------------------------------------------
    # Final statistics
    # ------------------------------------------------------------------

    def final_stats(self) -> dict[str, Any]:
        """Close out the replica and report its share of the result.

        Counters split two ways: *owned* quantities (delivered, lost,
        per-router delay parts, buffered residue) are partial and summed
        by the coordinator; *replicated* quantities (injected counts,
        released/dropped connections) are identical in every replica and
        taken from rank 0.  Rank 0 also ships the engine payload, whose
        network section the coordinator patches with the merged values.
        """
        engine = self.engine
        net = self.net
        engine.static_injected = self.static.injected
        engine.finish()
        stats: dict[str, Any] = {
            "rank": self.rank,
            "delivered": net.delivered,
            "lost_flits": net.lost_flits,
            "buffered": net.local_buffered(),
            "delay_parts": net.router_delay_parts(),
            "router_fingerprints": self.core.router_fingerprints(),
            "streams_fingerprint": self.rng.state_fingerprint(),
            "static_injected": self.static.injected,
            "dynamic_injected": engine.dynamic_injected,
            "released_connections": net.released_connections,
            "dropped_connections": net.dropped_connections,
            "rerouted": net.rerouted,
            "connections": len(net.connections),
            "skipped_cycles": self.skipped_cycles,
        }
        if self.rank == 0:
            stats["payload"] = engine.to_payload()
        return stats
