"""Tests for repro.core.priorities (IABP / SIABP biasing functions)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.priorities import (
    FIFOPriority,
    IABP,
    SIABP,
    StaticPriority,
    bit_length,
)


class TestBitLength:
    def test_matches_python_semantics(self):
        values = np.array([0, 1, 2, 3, 4, 7, 8, 255, 256, 2**40])
        expected = np.array([int(v).bit_length() for v in values])
        np.testing.assert_array_equal(bit_length(values), expected)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bit_length(np.array([-1]))

    @given(st.lists(st.integers(min_value=0, max_value=2**50), min_size=1,
                    max_size=32))
    def test_property_matches_int_bit_length(self, values):
        arr = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(
            bit_length(arr), [v.bit_length() for v in values]
        )

    def test_exact_at_boundary_powers_above_2_53(self):
        """Exact at every power of two +/- 1 up to the int64 limit.

        float64 rounds values like 2**54 - 1 up to 2**54, so a naive
        float-based bit_length overshoots by one exactly at these
        boundary points; int.bit_length is the ground truth.
        """
        values = []
        for k in range(1, 63):
            values.extend([2**k - 1, 2**k, 2**k + 1])
        values.append(2**63 - 1)
        arr = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(
            bit_length(arr), [v.bit_length() for v in values]
        )

    @given(st.integers(min_value=53, max_value=62),
           st.integers(min_value=-1, max_value=1))
    def test_property_boundary_powers(self, k, offset):
        v = 2**k + offset
        assert int(bit_length(np.array([v], dtype=np.int64))[0]) == \
            v.bit_length()


class TestSIABP:
    def test_seed_is_reserved_slots(self):
        s = SIABP()
        assert s.scalar(slots=7, delay=0) == 7

    def test_doubles_at_each_new_msb(self):
        s = SIABP()
        # delay 1 -> x2, delay 2..3 -> x4, delay 4..7 -> x8 ...
        assert s.scalar(5, 1) == 10
        assert s.scalar(5, 2) == 20
        assert s.scalar(5, 3) == 20
        assert s.scalar(5, 4) == 40
        assert s.scalar(5, 7) == 40
        assert s.scalar(5, 8) == 80

    def test_integer_valued(self):
        s = SIABP()
        out = s.compute(np.array([3, 9]), np.array([5, 100]))
        assert out.dtype == np.int64
        assert s.integer_valued

    def test_shift_capped_no_overflow(self):
        s = SIABP()
        out = s.scalar(slots=10_000, delay=2**60 - 1)
        assert out == 10_000 * 2**40  # capped shift
        assert out < 2**63

    @given(
        slots=st.integers(min_value=1, max_value=10_000),
        d1=st.integers(min_value=0, max_value=10**6),
        d2=st.integers(min_value=0, max_value=10**6),
    )
    def test_property_monotone_in_delay(self, slots, d1, d2):
        s = SIABP()
        lo, hi = sorted((d1, d2))
        assert s.scalar(slots, lo) <= s.scalar(slots, hi)

    @given(
        s1=st.integers(min_value=1, max_value=10_000),
        s2=st.integers(min_value=1, max_value=10_000),
        delay=st.integers(min_value=0, max_value=10**6),
    )
    def test_property_monotone_in_bandwidth(self, s1, s2, delay):
        s = SIABP()
        lo, hi = sorted((s1, s2))
        assert s.scalar(lo, delay) <= s.scalar(hi, delay)

    @given(
        slots=st.integers(min_value=1, max_value=5_000),
        delay=st.integers(min_value=1, max_value=10**6),
    )
    def test_property_envelopes_iabp_within_factor_two(self, slots, delay):
        """SIABP tracks 2*slots*delay within a factor of two (paper's
        rationale: the shift approximates the product)."""
        s = SIABP()
        value = s.scalar(slots, delay)
        product = slots * delay
        assert product < value <= 4 * product


class TestIABP:
    def test_is_delay_over_iat(self):
        scheme = IABP(round_cycles=1000)
        # slots=10 -> IAT=100 cycles; delay 250 -> priority 2.5.
        assert scheme.scalar(slots=10, delay=250) == pytest.approx(2.5)

    def test_rejects_bad_round(self):
        with pytest.raises(ValueError):
            IABP(0)

    def test_grows_faster_for_higher_bandwidth(self):
        scheme = IABP(round_cycles=1000)
        low = scheme.scalar(slots=1, delay=500)
        high = scheme.scalar(slots=100, delay=500)
        assert high == pytest.approx(100 * low)

    def test_vectorized(self):
        scheme = IABP(round_cycles=100)
        out = scheme.compute(np.array([1, 2, 4]), np.array([100, 100, 100]))
        np.testing.assert_allclose(out, [1.0, 2.0, 4.0])


class TestBaselines:
    def test_static_ignores_delay(self):
        s = StaticPriority()
        assert s.scalar(9, 0) == s.scalar(9, 10**6) == 9

    def test_fifo_ignores_bandwidth(self):
        s = FIFOPriority()
        assert s.scalar(1, 44) == s.scalar(9999, 44) == 44

    def test_compute_does_not_alias_inputs(self):
        slots = np.array([1, 2, 3])
        out = StaticPriority().compute(slots, np.zeros(3, dtype=np.int64))
        out[0] = 99
        assert slots[0] == 1


class TestOrderingAgreement:
    @given(st.data())
    def test_siabp_and_iabp_rank_extremes_alike(self, data):
        """If one VC dominates another in both slots and delay, every
        biasing scheme must rank it at least as high."""
        slots_a = data.draw(st.integers(1, 1000))
        slots_b = data.draw(st.integers(slots_a, 1000))
        delay_a = data.draw(st.integers(0, 10**5))
        delay_b = data.draw(st.integers(delay_a, 10**5))
        siabp, iabp = SIABP(), IABP(round_cycles=6400)
        assert siabp.scalar(slots_b, delay_b) >= siabp.scalar(slots_a, delay_a)
        assert iabp.scalar(slots_b, delay_b) >= iabp.scalar(slots_a, delay_a)


class TestKeyScalarAgreement:
    """key_scalar (the sparse hot path's pure-Python twin) vs compute."""

    SCHEMES = [SIABP(), StaticPriority(), FIFOPriority()]

    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    @given(st.integers(min_value=0, max_value=2**21),
           st.integers(min_value=0, max_value=2**62 - 1))
    def test_property_agrees_with_compute(self, scheme, slots, delay):
        expected = scheme.compute(
            np.array([slots], dtype=np.int64),
            np.array([delay], dtype=np.int64),
        )[0]
        assert scheme.key_scalar(slots, delay) == int(expected)

    def test_agrees_at_collapse_scale(self):
        """Exact agreement where float64 arithmetic would round."""
        scheme = SIABP()
        for slots, delay in [(2**14, 2**30), (2**14 + 1, 2**30),
                             (2**21, 2**40 - 1), (2**21, 2**40)]:
            vec = scheme.compute(np.array([slots], dtype=np.int64),
                                 np.array([delay], dtype=np.int64))[0]
            assert scheme.key_scalar(slots, delay) == int(vec)

    def test_overflow_raises_in_both_forms(self):
        scheme = SIABP()
        slots, delay = 1 << 23, 1 << 40  # bit_length(slots) + 40 > 62
        with pytest.raises(OverflowError):
            scheme.key_scalar(slots, delay)
        with pytest.raises(OverflowError):
            scheme.compute(np.array([slots], dtype=np.int64),
                           np.array([delay], dtype=np.int64))

    def test_float_scheme_has_no_key_scalar(self):
        with pytest.raises(NotImplementedError):
            IABP(100).key_scalar(1, 1)
