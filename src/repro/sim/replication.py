"""Replicated runs: seed ensembles and confidence intervals.

Single-seed sweeps (what the benches run at CI scale) are subject to
workload randomness: each load point draws its own connection mix and
destinations.  For publication-grade curves a point should be replicated
over independent seeds and reported with a confidence interval.  This
module provides that layer on top of :class:`SingleRouterSim` without
touching the single-run API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..analysis.stats import MeanCI, mean_ci
from ..router.config import RouterConfig
from ..router.router import MMRouter
from ..traffic.mixes import Workload
from .engine import RunControl
from .simulation import SimResult, SingleRouterSim

__all__ = ["ReplicatedPoint", "replicate", "replicate_sweep"]

#: Builds a workload onto a router: (router, workload_rng, target_load).
WorkloadBuilder = Callable[[MMRouter, np.random.Generator, float], Workload]


@dataclass(frozen=True)
class ReplicatedPoint:
    """Aggregate of one (arbiter, load) point over several seeds."""

    target_load: float
    results: tuple[SimResult, ...]

    @property
    def n(self) -> int:
        return len(self.results)

    @property
    def offered_load(self) -> MeanCI:
        return mean_ci([r.offered_load for r in self.results])

    @property
    def throughput(self) -> MeanCI:
        return mean_ci([r.throughput for r in self.results])

    @property
    def utilization(self) -> MeanCI:
        return mean_ci([r.utilization for r in self.results])

    def metric(self, pick: Callable[[SimResult], float]) -> MeanCI:
        """CI over an arbitrary per-run metric (NaN runs are dropped)."""
        values = [pick(r) for r in self.results]
        finite = [v for v in values if v == v]
        if not finite:
            return MeanCI(float("nan"), float("nan"), 0)
        return mean_ci(finite)

    def flit_delay_us(self, label: str = "overall") -> MeanCI:
        return self.metric(lambda r: r.flit_delay_us.get(label, float("nan")))

    def frame_delay_us(self) -> MeanCI:
        return self.metric(lambda r: r.overall_frame_delay_us)

    def jitter_us(self) -> MeanCI:
        return self.metric(lambda r: r.overall_jitter_us)


def replicate(
    builder: WorkloadBuilder,
    config: RouterConfig,
    arbiter: str,
    control: RunControl,
    target_load: float,
    seeds: Sequence[int],
    scheme: str = "siabp",
) -> ReplicatedPoint:
    """Run one (arbiter, load) point over independent seeds."""
    if not seeds:
        raise ValueError("need at least one seed")
    results = []
    for seed in seeds:
        sim = SingleRouterSim(config, arbiter=arbiter, scheme=scheme, seed=seed)
        workload = builder(sim.router, sim.rng.workload, target_load)
        results.append(sim.run(workload, control))
    return ReplicatedPoint(target_load, tuple(results))


def replicate_sweep(
    loads: Sequence[float],
    builder: WorkloadBuilder,
    config: RouterConfig,
    arbiter: str,
    control: RunControl,
    seeds: Sequence[int],
    scheme: str = "siabp",
) -> list[ReplicatedPoint]:
    """Replicated load sweep: one :class:`ReplicatedPoint` per load."""
    return [
        replicate(builder, config, arbiter, control, load, seeds, scheme)
        for load in loads
    ]
