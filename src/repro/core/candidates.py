"""Preallocated, array-native candidate storage (the scheduling hot path).

The object-based pipeline hands the arbiter a fresh ``list[list[Candidate]]``
every flit cycle — at 4 ports x 4 levels that is up to 16 dataclass
instances plus 5 list objects per cycle, and allocation dominates the
simulator's profile.  :class:`CandidateBuffer` replaces that handoff with
flat numpy buffers allocated once per router and refilled in place by
:meth:`repro.core.link_scheduler.LinkScheduler.select_into`:

* ``vc[p, l]`` / ``out_port[p, l]`` — the level-``l`` candidate of input
  port ``p`` (levels are the column index, so the per-port ordering that
  ``Candidate.level`` carries in the object path is implicit);
* ``count[p]`` — how many levels of row ``p`` are valid this cycle;
* ``prio_int`` / ``prio_float`` — the ranking key, exactly one of which
  is active per fill (``integer_keys`` says which).

**Priority-key representation.**  For integer-valued schemes (SIABP,
static, fifo) the key is the scheme's exact integer priority with the
reserved/best-effort tier folded into bit 62::

    prio_int = (tier << 62) | key        # key < 2**62, enforced upstream

where ``tier`` is 1 for a reserved (CBR/VBR) candidate with a non-zero
key and 0 otherwise.  Comparing ``prio_int`` values is therefore exactly
the lexicographic comparison (tier, key) — no float64 rounding, so
distinct priorities above 2**53 never collapse — and it matches the
object path's exact arithmetic (``key << 200`` for reserved candidates)
draw for draw, including the degenerate ``key == 0`` tie.  Float-valued
schemes (IABP) keep the classic exact power-of-two tier multiply in
``prio_float``.

**Sparse twin and lazy arrays.**  The sparse integer fill
(:meth:`~repro.core.link_scheduler.LinkScheduler.select_into_sparse`)
additionally records the candidates as per-port Python lists of
``(folded_key, vc, out_port)`` tuples in :attr:`CandidateBuffer.sparse`
(``sparse_valid`` True), which scalar-loop arbiters like COA consume
directly.  The numpy arrays are then materialized *lazily*: the fill
only marks the buffer dirty, and the ``count`` / ``vc`` / ``out_port`` /
``prio_int`` / ``prio_float`` properties replay the sparse rows into the
arrays on first access.  Cycles whose arbiter never touches the arrays
(the common case on the hot path) skip the scatter writes entirely; any
reader — other arbiters, ``to_candidates``, tests — still sees arrays
that are exactly coherent with the sparse rows.

Arbiters consume the buffer through :meth:`Arbiter.match_buffer`; every
built-in arbiter implements it natively, and the base class falls back to
:meth:`to_candidates` + :meth:`Arbiter.match` so external arbiters keep
working unchanged.
"""

from __future__ import annotations

import numpy as np

from .matching import Candidate

__all__ = ["CandidateBuffer", "TIER_SHIFT"]

#: Bit position of the reserved-tier flag inside an int64 priority key.
TIER_SHIFT = 62

#: Exact object-path tier multiplier (1 << 200) for reconstructing
#: object-path priorities from buffer entries.
_OBJECT_TIER_FACTOR = 1 << 200


class CandidateBuffer:
    """Flat per-(port, level) candidate arrays, refilled in place."""

    __slots__ = (
        "num_ports",
        "levels",
        "_vc",
        "_out_port",
        "_prio_int",
        "_prio_float",
        "_count",
        "integer_keys",
        "_vc_flat",
        "_out_port_flat",
        "_prio_int_flat",
        "sparse",
        "sparse_valid",
        "_dirty",
    )

    def __init__(self, num_ports: int, levels: int) -> None:
        if num_ports <= 0 or levels <= 0:
            raise ValueError("num_ports and levels must be positive")
        self.num_ports = num_ports
        self.levels = levels
        shape = (num_ports, levels)
        self._vc = np.zeros(shape, dtype=np.int64)
        self._out_port = np.zeros(shape, dtype=np.int64)
        self._prio_int = np.zeros(shape, dtype=np.int64)
        self._prio_float = np.zeros(shape, dtype=np.float64)
        self._count = np.zeros(num_ports, dtype=np.int64)
        #: True when ``prio_int`` holds the active keys for this fill.
        self.integer_keys = True
        # Flat (same-memory) views for scattered writes by the lazy sync:
        # entry (p, l) lives at flat index p * levels + l.
        self._vc_flat = self._vc.reshape(-1)
        self._out_port_flat = self._out_port.reshape(-1)
        self._prio_int_flat = self._prio_int.reshape(-1)
        #: Python-native twin of the candidate arrays: per-port lists of
        #: (folded_key, vc, out_port) tuples in level order, at most
        #: ``levels`` entries each.  Valid only while ``sparse_valid``.
        self.sparse: list[list[tuple[int, int, int]]] = [
            [] for _ in range(num_ports)
        ]
        self.sparse_valid = False
        # True while the arrays lag behind the sparse rows.
        self._dirty = False

    # ------------------------------------------------------------------
    # Array views (lazily synced from the sparse rows)
    # ------------------------------------------------------------------

    def _sync(self) -> None:
        """Replay the sparse rows into the candidate arrays."""
        if not self._dirty:
            return
        self._dirty = False
        c = self.levels
        pos: list[int] = []
        keys: list[int] = []
        vcs: list[int] = []
        outs: list[int] = []
        count = self._count
        for p, cands in enumerate(self.sparse):
            count[p] = len(cands)
            base = p * c
            for level, (key, vc, out) in enumerate(cands):
                pos.append(base + level)
                keys.append(key)
                vcs.append(vc)
                outs.append(out)
        if pos:
            idx = np.asarray(pos, dtype=np.intp)
            self._prio_int_flat[idx] = keys
            self._vc_flat[idx] = vcs
            self._out_port_flat[idx] = outs

    def mark_sparse_filled(self) -> None:
        """A sparse fill completed; arrays sync lazily on next access."""
        self.integer_keys = True
        self.sparse_valid = True
        self._dirty = True

    def mark_array_filled(self, *, integer_keys: bool) -> None:
        """A direct array fill begins; drop any stale sparse state."""
        self.integer_keys = integer_keys
        self.sparse_valid = False
        self._dirty = False

    @property
    def vc(self) -> np.ndarray:
        self._sync()
        return self._vc

    @property
    def out_port(self) -> np.ndarray:
        self._sync()
        return self._out_port

    @property
    def prio_int(self) -> np.ndarray:
        self._sync()
        return self._prio_int

    @property
    def prio_float(self) -> np.ndarray:
        self._sync()
        return self._prio_float

    @property
    def count(self) -> np.ndarray:
        self._sync()
        return self._count

    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Mark every port empty (the fill pass overwrites the rest)."""
        self._count[:] = 0
        for lst in self.sparse:
            lst.clear()
        self.sparse_valid = False
        self._dirty = False

    def total(self) -> int:
        """Number of valid candidates across all ports."""
        return int(self.count.sum())

    def priority_of(self, port: int, level: int) -> int | float:
        """Object-path priority of one entry (exact; tests/diagnostics)."""
        if self.integer_keys:
            folded = int(self.prio_int[port, level])
            tier, key = folded >> TIER_SHIFT, folded & ((1 << TIER_SHIFT) - 1)
            return key * _OBJECT_TIER_FACTOR if tier else key
        return float(self.prio_float[port, level])

    def to_candidates(self) -> list[list[Candidate]]:
        """Materialize the object-path view (reference/fallback only).

        The returned candidates carry the exact object-path priorities,
        so ``Arbiter.match`` over them is draw-for-draw identical to
        ``Arbiter.match_buffer`` over this buffer.
        """
        out: list[list[Candidate]] = []
        counts = self.count.tolist()
        vcs = self.vc.tolist()
        outs = self.out_port.tolist()
        for p in range(self.num_ports):
            port_cands = [
                Candidate(
                    in_port=p,
                    vc=vcs[p][level],
                    out_port=outs[p][level],
                    priority=self.priority_of(p, level),
                    level=level,
                )
                for level in range(counts[p])
            ]
            out.append(port_cands)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "int" if self.integer_keys else "float"
        return (
            f"<CandidateBuffer {self.num_ports}x{self.levels} "
            f"{kind}-keyed, {self.total()} candidates>"
        )
