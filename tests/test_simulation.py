"""Integration tests for repro.sim.simulation / sweep / experiments."""

import numpy as np
import pytest

from repro.sim.engine import RunControl
from repro.sim.experiments import default_config, get_scale
from repro.sim.simulation import SingleRouterSim
from repro.sim.sweep import run_load_sweep
from repro.traffic.mixes import build_cbr_workload, build_vbr_workload


def small_config(**kw):
    base = dict(num_ports=4, vcs_per_link=32, candidate_levels=4)
    base.update(kw)
    return default_config(**base)


class TestSingleRouterSim:
    def test_conservation_and_sane_metrics(self):
        sim = SingleRouterSim(small_config(), arbiter="coa", seed=1)
        wl = build_cbr_workload(sim.router, 0.5, sim.rng.workload)
        res = sim.run(wl, RunControl(cycles=8_000, warmup_cycles=1_000))
        # Below saturation: throughput tracks offered load.
        assert res.throughput == pytest.approx(res.offered_load, rel=0.05)
        assert res.utilization == pytest.approx(res.offered_load, rel=0.1)
        assert res.normalized_throughput == pytest.approx(1.0, rel=0.05)
        # Delay is at least the minimum possible (one router traversal).
        assert res.overall_flit_delay_us >= sim.config.flit_cycle_us
        assert res.backlog < 100
        sim.router.check_flow_control_invariant()

    def test_accounting_exact(self):
        """Departures + backlog == injections, flit for flit."""
        sim = SingleRouterSim(small_config(), arbiter="coa", seed=2)
        wl = build_cbr_workload(sim.router, 0.6, sim.rng.workload)
        control = RunControl(cycles=5_000)
        res = sim.run(wl, control)
        injected = sum(nic.accepted for nic in sim.router.nics)
        departed = sim.router.crossbar.total_grants
        assert injected == departed + res.backlog

    def test_determinism(self):
        def run_once():
            sim = SingleRouterSim(small_config(), arbiter="coa", seed=3)
            wl = build_cbr_workload(sim.router, 0.5, sim.rng.workload)
            return sim.run(wl, RunControl(cycles=3_000))

        a, b = run_once(), run_once()
        assert a.flit_delay_us == b.flit_delay_us
        assert a.utilization == b.utilization

    def test_workloads_identical_across_arbiters(self):
        """The fairness rule: same seed => same connections/schedules."""
        def build(arbiter):
            sim = SingleRouterSim(small_config(), arbiter=arbiter, seed=4)
            wl = build_cbr_workload(sim.router, 0.5, sim.rng.workload)
            return [(i.conn.in_port, i.conn.vc, i.conn.out_port, i.label)
                    for i in wl.loads]

        assert build("coa") == build("wfa")

    def test_vbr_run_produces_frame_metrics(self):
        sim = SingleRouterSim(small_config(), arbiter="coa", seed=5)
        wl = build_vbr_workload(sim.router, 0.5, sim.rng.workload,
                                frame_time_cycles=800, bandwidth_scale=8.0,
                                num_gops=1)
        res = sim.run(wl, RunControl(cycles=800 * 15, warmup_cycles=800))
        assert res.frames["overall"] > 0
        assert res.overall_frame_delay_us > 0
        assert res.overall_jitter_us >= 0

    def test_scheme_affects_results(self):
        def run_with(scheme):
            sim = SingleRouterSim(small_config(), "coa", scheme, seed=6)
            wl = build_cbr_workload(sim.router, 0.8, sim.rng.workload)
            return sim.run(wl, RunControl(cycles=4_000)).flit_delay_us

        assert run_with("siabp") != run_with("fifo")

    def test_result_records_provenance(self):
        sim = SingleRouterSim(small_config(), "wfa", "siabp", seed=7)
        wl = build_cbr_workload(sim.router, 0.3, sim.rng.workload)
        res = sim.run(wl, RunControl(cycles=1_000))
        assert res.arbiter == "wfa"
        assert res.scheme == "siabp"
        assert res.seed == 7
        assert res.cycles == 1_000
        assert res.connections == len(wl)


class TestSweep:
    def test_sweep_points_ascend_and_series_shapes(self):
        control = RunControl(cycles=2_000, warmup_cycles=200)

        def builder(router, rng, load):
            return build_cbr_workload(router, load, rng)

        sweep = run_load_sweep((0.2, 0.5), builder, small_config(), "coa",
                               control, seed=1)
        assert sweep.arbiter == "coa"
        assert len(sweep.points) == 2
        assert sweep.points[0].offered_load < sweep.points[1].offered_load
        series = sweep.series(lambda r: r.utilization)
        assert len(series) == 2
        assert series[0][0] == pytest.approx(
            sweep.points[0].offered_load * 100
        )


class TestScales:
    def test_known_scales(self):
        ci = get_scale("ci")
        assert ci.vbr_cycles == ci.vbr_frame_time_cycles * 15 * ci.vbr_num_gops
        paper = get_scale("paper")
        assert paper.cbr_cycles > ci.cbr_cycles
        assert get_scale(ci) is ci

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("galactic")
