"""Priority biasing functions for link scheduling.

The MMR's link scheduler ranks the head flits of a physical link's virtual
channels by a *biased priority* that combines the QoS a connection
requested (its reserved bandwidth) with the QoS its head flit is receiving
(its queuing delay).  The paper discusses two biasing functions plus the
degenerate schemes we keep as baselines:

* **IABP** (Inter-Arrival Based Priority): ``priority = queuing_delay /
  IAT`` where the inter-arrival time ``IAT = round / reserved_slots``.
  Equivalent to ``delay * reserved_slots / round`` — a product, i.e. a
  theoretical reference needing a divider (or multiplier) per VC, too
  slow/large for the router's cycle time.
* **SIABP** (Simple IABP): the practical scheme.  The priority register is
  seeded with the connection's reserved slots per round (an integer) and
  shifted left each time the queuing-delay counter sets a bit for the
  first time — i.e. each time the delay crosses a power of two.  In closed
  form: ``priority = slots << bit_length(delay)``.  Hardware cost: a
  shifter plus combinational logic (see :mod:`repro.core.hwcost`).
* **StaticPriority**: rank by reserved bandwidth only (no aging) — shows
  why biasing is needed (low-bandwidth connections starve... never age).
* **FIFOPriority**: rank by queuing delay only (oldest first) — shows why
  bandwidth awareness is needed.

All schemes are vectorized: they map numpy arrays of reserved slots and
queuing delays to an array of priorities, so the link scheduler evaluates
a whole physical link's VCs in a handful of vector operations.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "PriorityScheme",
    "IABP",
    "SIABP",
    "StaticPriority",
    "FIFOPriority",
    "bit_length",
]

#: Cap on the SIABP shift amount.  Reserved slots fit comfortably in
#: ~20 bits; capping the shift at 40 keeps priorities inside int64 while
#: preserving the ordering for any delay the simulator can produce.
_MAX_SHIFT = 40

#: Integer priority keys must stay below this bound so the link
#: scheduler can fold the reserved/best-effort tier bit into an int64
#: sort key (tier << 62 | key) without overflow.  SIABP's capped shift
#: keeps any sane reservation far below it; the schemes enforce it
#: loudly instead of wrapping silently.
MAX_INTEGER_KEY = 1 << 62


def bit_length(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length``, exact for every non-negative int64.

    ``bit_length(0) == 0``, ``bit_length(1) == 1``, ``bit_length(2) == 2``,
    ``bit_length(3) == 2`` ... exactly matching Python's semantics.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 0:
        raise ValueError("bit_length requires non-negative values")
    # frexp represents v as m * 2**e with m in [0.5, 1); e is exactly the
    # bit length for integers below 2**53 (np.log2 would round values
    # like 2**49 - 1 up and overshoot by one).  frexp(0) yields e == 0,
    # matching bit_length(0) == 0.
    _m, exp = np.frexp(values.astype(np.float64))
    exp = exp.astype(np.int64)
    # Above 2**53 the float64 conversion itself rounds: values just
    # below a power of two (e.g. 2**54 - 1) round *up* to it, so frexp
    # overshoots the bit length by one.  Exact integer fallback: where
    # overshoot is possible, compare against 2**(exp - 1) and correct.
    suspect = exp > 53
    if suspect.any():
        unsigned = values.astype(np.uint64)
        # exp <= 64 for any int64 input, so 2**(exp-1) fits uint64
        # exactly; shift 0 where not suspect to keep the shift defined.
        shift = np.where(suspect, exp - 1, 0).astype(np.uint64)
        threshold = np.uint64(1) << shift
        exp = exp - (suspect & (unsigned < threshold))
    return exp


class PriorityScheme(abc.ABC):
    """Maps (reserved slots, queuing delay) to a biased priority.

    Two families share this interface:

    * **Stateless** schemes (the paper's IABP/SIABP and the static/fifo
      baselines) are pure maps ``(slots, delay) -> priority`` evaluated
      through :meth:`compute` / :meth:`key_scalar`.
    * **Stateful** schemes (the fair-queueing family in
      :mod:`repro.fq`) rank on mutable per-VC scheduler state — virtual
      clocks, deficit counters — instead.  They set
      :attr:`stateful` ``= True``, produce this cycle's ranking keys via
      :meth:`keys` / :meth:`keys_port`, and receive the connection /
      service lifecycle through the ``on_setup`` / ``on_teardown`` /
      ``on_service`` hooks, which :class:`~repro.router.router.MMRouter`
      (and every inlined cycle loop) dispatches.  Stateful schemes must
      be ``integer_valued`` and emit keys in ``[1, 2**62)`` for occupied
      VCs so the reserved-tier folding of the link scheduler applies
      unchanged.
    """

    #: Registry/display name; subclasses override.
    name: str = "scheme"
    #: True when priorities are exact integers (hardware-realizable).
    integer_valued: bool = False
    #: True when the ranking depends on mutable scheduler state; the
    #: router then drives the lifecycle hooks below and ranks through
    #: :meth:`keys` / :meth:`keys_port` instead of :meth:`compute`.
    stateful: bool = False

    @abc.abstractmethod
    def compute(self, slots: np.ndarray, delay: np.ndarray) -> np.ndarray:
        """Vectorized priority computation.

        Parameters
        ----------
        slots:
            Reserved flit-cycle slots per round, per VC (static).
        delay:
            Queuing delay of each VC's head flit, in flit cycles, measured
            since the flit entered the router's VC memory.
        """

    def scalar(self, slots: int, delay: int) -> int | float:
        """Convenience scalar form (tests, examples).

        Returns a Python ``int`` for integer-valued schemes (exact at any
        magnitude) and a ``float`` for float-valued ones — a float cast
        here would collapse distinct integer priorities above 2**53.
        """
        return self.compute(
            np.asarray([slots], dtype=np.int64),
            np.asarray([delay], dtype=np.int64),
        )[0].item()

    def key_scalar(self, slots: int, delay: int) -> int:
        """Exact scalar priority key (integer-valued schemes only).

        Pure-Python twin of :meth:`compute` for the sparse scheduling hot
        path, which evaluates only the occupied VCs: ``int.bit_length``
        and Python's arbitrary-precision ints make this exact at any
        magnitude with no vectorization overhead.  Must agree with
        :meth:`compute` element for element (the property tests pin it).
        """
        raise NotImplementedError(
            f"{type(self).__name__} is not integer-valued"
        )

    # ------------------------------------------------------------------
    # Stateful-scheme protocol (no-ops for the stateless family)
    # ------------------------------------------------------------------

    def on_setup(
        self, port: int, vc: int, out_port: int, slots: int, reserved: bool
    ) -> None:
        """A connection was established on ``(port, vc)``."""

    def on_teardown(self, port: int, vc: int) -> None:
        """The connection on ``(port, vc)`` was released (or torn down
        forcibly by fault recovery); per-VC scheduler state must reset."""

    def on_service(self, port: int, vc: int, out_port: int, now: int) -> None:
        """One head flit of ``(port, vc)`` crossed the crossbar at ``now``."""

    def keys_port(self, port: int, occupied: np.ndarray) -> np.ndarray:
        """This cycle's int64 ranking keys for one input port.

        ``occupied`` is the (vcs,) boolean head-occupancy row.  Keys of
        occupied VCs must lie in ``[1, 2**62)``; unoccupied entries are
        ignored by the caller.  May mutate lazy per-head state (finish
        tags) but must be idempotent between services — the differential
        tests rank the same cycle through several entry points.
        """
        raise NotImplementedError(f"{type(self).__name__} is not stateful")

    def keys(self, occupied: np.ndarray) -> np.ndarray:
        """All ports' ranking keys: (ports, vcs) int64.

        Default: stack :meth:`keys_port` row by row.  Per-port state is
        independent in every scheme shipped here, so ranking one port
        never disturbs another's keys.
        """
        return np.stack(
            [self.keys_port(p, occupied[p]) for p in range(occupied.shape[0])]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class IABP(PriorityScheme):
    """Inter-Arrival Based Priority: ``delay / IAT`` (reference model).

    ``IAT = round_cycles / slots`` so the priority is
    ``delay * slots / round_cycles``.  Floating point; grows linearly with
    delay, faster for high-bandwidth connections.
    """

    name = "iabp"
    integer_valued = False

    def __init__(self, round_cycles: int) -> None:
        if round_cycles <= 0:
            raise ValueError("round_cycles must be positive")
        self.round_cycles = round_cycles

    def compute(self, slots: np.ndarray, delay: np.ndarray) -> np.ndarray:
        return (
            delay.astype(np.float64) * slots.astype(np.float64) / self.round_cycles
        )


class SIABP(PriorityScheme):
    """Simple IABP: shift-based hardware approximation of IABP.

    ``priority = slots << bit_length(delay)`` (shift capped to keep int64
    exact).  The seed (``delay == 0``) is the reserved slots themselves;
    every time the delay counter sets a new most-significant bit the
    priority doubles.  Piecewise-exponential envelope of IABP's linear
    growth: within a factor of two of ``2 * slots * delay``.
    """

    name = "siabp"
    integer_valued = True

    def compute(self, slots: np.ndarray, delay: np.ndarray) -> np.ndarray:
        shift = np.minimum(bit_length(delay), _MAX_SHIFT)
        slots = np.asarray(slots, dtype=np.int64)
        # slots << shift must stay below 2**62 (int64 sort-key headroom);
        # silent wrap-around would invert the priority order.  Fast
        # screen first: with the shift capped at 40, any slots below
        # 2**22 are safe, and real reservations are orders of magnitude
        # smaller — the exact per-element check runs only when the cheap
        # bound fails.
        if slots.size and int(slots.max()) >= (1 << (62 - _MAX_SHIFT)):
            if bool(np.any(bit_length(slots) + shift > 62)):
                raise OverflowError(
                    "SIABP priority overflows its int64 key: "
                    "bit_length(slots) + shift must stay <= 62"
                )
        return slots << shift

    def key_scalar(self, slots: int, delay: int) -> int:
        shift = delay.bit_length()
        if shift > _MAX_SHIFT:
            shift = _MAX_SHIFT
        if slots.bit_length() + shift > 62:
            raise OverflowError(
                "SIABP priority overflows its int64 key: "
                "bit_length(slots) + shift must stay <= 62"
            )
        return slots << shift


class StaticPriority(PriorityScheme):
    """Rank by reserved bandwidth only — no aging (baseline)."""

    name = "static"
    integer_valued = True

    def compute(self, slots: np.ndarray, delay: np.ndarray) -> np.ndarray:
        return slots.astype(np.int64).copy()

    def key_scalar(self, slots: int, delay: int) -> int:
        return slots


class FIFOPriority(PriorityScheme):
    """Rank by queuing delay only — oldest-first (baseline)."""

    name = "fifo"
    integer_valued = True

    def compute(self, slots: np.ndarray, delay: np.ndarray) -> np.ndarray:
        return delay.astype(np.int64).copy()

    def key_scalar(self, slots: int, delay: int) -> int:
        return delay
