"""Tests for repro.router.routing (PCS connection setup)."""

import pytest

from repro.router.admission import AdmissionController
from repro.router.config import RouterConfig
from repro.router.connection import ConnectionTable, TrafficClass
from repro.router.routing import SetupUnit


def make_unit(vcs=2, round_cycles=100):
    cfg = RouterConfig(num_ports=2, vcs_per_link=vcs, candidate_levels=1,
                       flit_cycles_per_round=round_cycles,
                       credit_return_delay=1)
    table = ConnectionTable(cfg)
    admission = AdmissionController(cfg)
    return SetupUnit(cfg, table, admission), table, admission


class TestSetup:
    def test_accepts_and_assigns_vc(self):
        unit, table, _ = make_unit()
        res = unit.request(0, 1, TrafficClass.CBR, avg_slots=10)
        assert res
        assert res.connection.vc == 0
        assert res.connection.conn_id == 0
        assert res.latency_cycles == 2  # 1 traversal + 1 ack phit
        res2 = unit.request(0, 1, TrafficClass.CBR, avg_slots=10)
        assert res2.connection.vc == 1
        assert len(table) == 2
        assert unit.accepted == 2

    def test_rejects_when_vcs_exhausted(self):
        unit, _, _ = make_unit(vcs=1)
        assert unit.request(0, 1, TrafficClass.CBR, avg_slots=1)
        res = unit.request(0, 0, TrafficClass.CBR, avg_slots=1)
        assert not res
        assert "virtual channel" in res.reason
        assert unit.rejected == 1

    def test_rejects_on_admission(self):
        unit, _, _ = make_unit(round_cycles=100)
        assert unit.request(0, 1, TrafficClass.CBR, avg_slots=80)
        res = unit.request(0, 1, TrafficClass.CBR, avg_slots=30)
        assert not res
        assert "reservation" in res.reason

    def test_vbr_defaults_peak_to_avg(self):
        unit, _, _ = make_unit()
        res = unit.request(0, 1, TrafficClass.VBR, avg_slots=10)
        assert res.connection.peak_slots == 10

    def test_vbr_peak_passed_through(self):
        unit, _, _ = make_unit()
        res = unit.request(0, 1, TrafficClass.VBR, avg_slots=10, peak_slots=40)
        assert res.connection.peak_slots == 40

    def test_conn_ids_unique_across_rejections(self):
        unit, _, _ = make_unit(vcs=4, round_cycles=100)
        a = unit.request(0, 1, TrafficClass.CBR, avg_slots=90).connection
        rej = unit.request(0, 1, TrafficClass.CBR, avg_slots=90)
        assert not rej
        b = unit.request(1, 0, TrafficClass.CBR, avg_slots=10).connection
        assert a.conn_id != b.conn_id


class TestTeardown:
    def test_teardown_releases_everything(self):
        unit, table, admission = make_unit(vcs=1, round_cycles=100)
        res = unit.request(0, 1, TrafficClass.CBR, avg_slots=100)
        unit.teardown(res.connection.conn_id)
        assert len(table) == 0
        assert admission.reserved_avg_load(0) == 0.0
        # Both the VC and the bandwidth are reusable.
        assert unit.request(0, 1, TrafficClass.CBR, avg_slots=100)

    def test_teardown_unknown_raises(self):
        unit, _, _ = make_unit()
        with pytest.raises(KeyError):
            unit.teardown(42)
