"""Tests for the iSLIP and PIM baseline arbiters."""

import numpy as np
import pytest

from repro.core.islip import ISLIP
from repro.core.matching import (
    Candidate,
    is_conflict_free,
    is_maximal,
    restrict_levels,
)
from repro.core.pim import PIM


def cand(i, v, o, prio=1.0, level=0):
    return Candidate(i, v, o, prio, level)


def rng(seed=0):
    return np.random.default_rng(seed)


def full_uniform_candidates(n):
    """Every input requests every output (via its n candidate levels)."""
    return [
        [cand(i, lvl, lvl, 1.0, lvl) for lvl in range(n)]
        for i in range(n)
    ]


class TestISLIP:
    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            ISLIP(4, iterations=0)
        with pytest.raises(ValueError):
            ISLIP(4, max_levels=0)

    def test_head_of_line_default_sees_one_request(self):
        """Conventional crossbar arbiters on the MMR see only the
        head-of-line candidate per input link (DESIGN.md / paper §2)."""
        islip = ISLIP(2)  # max_levels=1 default
        cands = [
            [cand(0, 0, 0, level=0), cand(0, 1, 1, level=1)],
            [cand(1, 0, 0, level=0)],
        ]
        grants = islip.match(cands, rng())
        # The level-1 escape is invisible: only one grant possible.
        assert len(grants) == 1

    def test_single_request(self):
        islip = ISLIP(4)
        assert islip.match([[cand(0, 2, 3)], [], [], []], rng()) == [(0, 2, 3)]

    def test_full_matrix_gets_perfect_matching(self):
        islip = ISLIP(4, max_levels=None)
        grants = islip.match(full_uniform_candidates(4), rng())
        assert len(grants) == 4
        assert is_conflict_free(grants, 4)

    def test_pointers_desynchronize(self):
        """Two inputs contending for the same two outputs settle into a
        phase where both are served every cycle (the iSLIP property)."""
        islip = ISLIP(2, max_levels=None)
        cands = [
            [cand(0, 0, 0, level=0), cand(0, 1, 1, level=1)],
            [cand(1, 0, 0, level=0), cand(1, 1, 1, level=1)],
        ]
        sizes = [len(islip.match(cands, rng())) for _ in range(6)]
        assert sizes[-1] == 2  # after desynchronization, full matching
        assert all(s == 2 for s in sizes[1:])

    def test_round_robin_fairness_on_hotspot(self):
        islip = ISLIP(2, iterations=1)
        cands = [[cand(0, 0, 0)], [cand(1, 0, 0)]]
        winners = [islip.match(cands, rng())[0][0] for _ in range(8)]
        assert set(winners) == {0, 1}

    def test_reset_clears_pointers(self):
        islip = ISLIP(2)
        cands = [[cand(0, 0, 0)], [cand(1, 0, 0)]]
        first = islip.match(cands, rng())[0][0]
        islip.match(cands, rng())
        islip.reset()
        assert islip.match(cands, rng())[0][0] == first

    @pytest.mark.parametrize("max_levels", [1, None])
    def test_conflict_free_and_maximal_fuzz(self, max_levels):
        generator = rng(5)
        islip = ISLIP(4, max_levels=max_levels)
        for _ in range(300):
            cands = _random_candidates(generator, 4)
            grants = islip.match(cands, generator)
            visible = restrict_levels(cands, max_levels)
            assert is_conflict_free(grants, 4)
            assert is_maximal(visible, grants, 4)


class TestPIM:
    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            PIM(4, iterations=-1)

    def test_single_request(self):
        pim = PIM(4)
        assert pim.match([[], [cand(1, 5, 0)], [], []], rng()) == [(1, 5, 0)]

    def test_randomization_spreads_grants(self):
        pim = PIM(2, iterations=1)
        cands = [[cand(0, 0, 0)], [cand(1, 0, 0)]]
        winners = {pim.match(cands, rng(s))[0][0] for s in range(64)}
        assert winners == {0, 1}

    @pytest.mark.parametrize("max_levels", [1, None])
    def test_enough_iterations_reach_maximal(self, max_levels):
        generator = rng(9)
        pim = PIM(4, max_levels=max_levels)  # N iterations always converge
        for _ in range(300):
            cands = _random_candidates(generator, 4)
            grants = pim.match(cands, generator)
            visible = restrict_levels(cands, max_levels)
            assert is_conflict_free(grants, 4)
            assert is_maximal(visible, grants, 4)

    def test_single_iteration_may_be_submaximal_but_valid(self):
        generator = rng(11)
        pim = PIM(4, iterations=1)
        for _ in range(100):
            cands = _random_candidates(generator, 4)
            grants = pim.match(cands, generator)
            assert is_conflict_free(grants, 4)


def _random_candidates(generator, n):
    out = []
    for p in range(n):
        k = int(generator.integers(0, n + 1))
        out.append(
            [cand(p, lvl, int(generator.integers(n)), 1.0, lvl) for lvl in range(k)]
        )
    return out
