"""Saturation-point detection on delay-vs-load and utilization curves.

The paper reads saturation off its plots ("saturation is reached around
70% of link bandwidth when the WFA scheme is used, ... 83% with COA").
These helpers make that reading programmatic so the benches can assert
the S1 claims:

* :func:`knee_by_delay` — first load where delay exceeds a multiple of
  the low-load baseline delay (the "hockey stick" of Figs. 5 and 9).
* :func:`knee_by_deficit` — first load where delivered throughput (or
  crossbar utilization, Fig. 8) falls measurably below the offered load.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["knee_by_delay", "knee_by_deficit", "saturation_gap"]

#: Series type: (load, value) pairs, loads ascending.
Series = Sequence[tuple[float, float]]


def _check(series: Series) -> None:
    if len(series) == 0:
        raise ValueError("series is empty")
    loads = [p[0] for p in series]
    if loads != sorted(loads):
        raise ValueError("series loads must ascend")


def knee_by_delay(
    series: Series,
    blowup: float = 10.0,
    baseline_points: int = 2,
) -> float:
    """First load whose delay exceeds ``blowup`` x the low-load baseline.

    The baseline is the mean of the first ``baseline_points`` delays.
    Returns ``inf`` when the curve never blows up.
    """
    _check(series)
    if blowup <= 1.0:
        raise ValueError("blowup must exceed 1")
    k = min(max(1, baseline_points), len(series))
    baseline = sum(v for _l, v in series[:k]) / k
    if baseline <= 0:
        raise ValueError("baseline delay must be positive")
    for load, value in series:
        if value > blowup * baseline:
            return load
    return float("inf")


def knee_by_deficit(
    series: Series,
    tolerance: float = 0.05,
) -> float:
    """First load where ``value`` (throughput/utilization, same units as
    load) falls more than ``tolerance`` (relative) below the load.

    Returns ``inf`` if delivery always tracks offered load.
    """
    _check(series)
    if not (0 < tolerance < 1):
        raise ValueError("tolerance must be in (0, 1)")
    for load, value in series:
        if load > 0 and value < load * (1.0 - tolerance):
            return load
    return float("inf")


def saturation_gap(knee_a: float, knee_b: float) -> float:
    """Load-points of saturation headroom of A over B (positive = A
    saturates later).  Handles the never-saturates ``inf`` cases."""
    if knee_a == float("inf") and knee_b == float("inf"):
        return 0.0
    if knee_a == float("inf"):
        return float("inf")
    if knee_b == float("inf"):
        return float("-inf")
    return knee_a - knee_b
