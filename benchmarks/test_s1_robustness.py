"""S1-R — robustness of the headline saturation claim across seeds.

The paper's central result — WFA saturates near 70% offered load, COA
holds well past 80% — is asserted by F5/F8/F9 on one seed.  This bench
replicates the CBR throughput measurement over independent seeds
(independent connection mixes, destinations, phases) and requires the
claim to hold for *every* replication, not on average: the mechanism
(head-of-line blocking vs multi-candidate priority matching) is
structural, so no lucky workload should rescue the WFA.

The fault benches extend S1-R to the failure regime: a dead link at the
paper's 70% operating point must shed best-effort traffic first while
the surviving CBR connections keep their delay bound, and CRC-detected
corruption must cost only retransmissions — never delivered-flit loss —
at any injection rate.
"""

import pytest

from repro.analysis import render_table
from repro.faults import FaultConfig, FaultySingleRouterSim
from repro.sim.engine import RunControl
from repro.sim.experiments import default_config, get_scale
from repro.sim.replication import replicate
from repro.traffic.mixes import build_besteffort_workload, build_cbr_workload

SEEDS = (101, 202, 303)
LOADS = (0.7, 0.85)

FAULT_SEEDS = (101, 202)
FAULT_CYCLES = 12_000
FAULT_WARMUP = 2_000
DEAD_PORT = 1
DEAD_PORT_CYCLE = 4_000


def _builder(router, rng, load):
    return build_cbr_workload(router, load, rng)


def _run():
    scale = get_scale("ci")
    control = RunControl(scale.cbr_cycles, scale.cbr_warmup)
    out = {}
    for arbiter in ("coa", "wfa"):
        for load in LOADS:
            out[(arbiter, load)] = replicate(
                _builder, default_config(), arbiter, control, load, SEEDS
            )
    return out


@pytest.mark.benchmark(group="s1-robustness")
def test_s1_saturation_claim_across_seeds(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    rows = []
    for (arbiter, load), point in results.items():
        thr = point.throughput
        rows.append([
            arbiter, f"{load:.0%}", point.n,
            f"{thr.mean:.1%} ± {thr.half_width:.1%}",
            f"{min(r.normalized_throughput for r in point.results):.3f}",
        ])
    print(render_table(
        ["arbiter", "target load", "seeds", "throughput (95% CI)",
         "worst delivered/offered"],
        rows,
        title="S1-R — saturation claim replicated over "
              f"{len(SEEDS)} independent workloads",
    ))

    # COA delivers the offered load at every seed and load — including
    # 85%, past the paper's ~83% reading.
    for load in LOADS:
        for r in results[("coa", load)].results:
            assert r.normalized_throughput > 0.97, (load, r.seed)

    # 70% is the WFA's knee itself: individual workloads land on either
    # side of it (the paper says "around 70%"), so the claim there is the
    # mean, not every seed.
    wfa_70 = results[("wfa", 0.7)]
    assert wfa_70.throughput.mean < results[("coa", 0.7)].throughput.mean + 0.01

    # 85% is decisively past the knee: every seed must show saturation,
    # and the throughput CIs must separate cleanly.
    coa_85 = results[("coa", 0.85)]
    wfa_85 = results[("wfa", 0.85)]
    for r in wfa_85.results:
        assert r.normalized_throughput < 0.9, r.seed
    assert coa_85.throughput.low > wfa_85.throughput.high


# ----------------------------------------------------------------------
# Fault regime: graceful degradation under a dead link at 70% load
# ----------------------------------------------------------------------


def _fault_run(seed, faults, cbr_load=0.7, be_load=0.2):
    sim = FaultySingleRouterSim(default_config(), seed=seed, faults=faults)
    workload = build_cbr_workload(sim.router, cbr_load, sim.rng.workload)
    if be_load > 0:
        for item in build_besteffort_workload(
            sim.router, be_load, sim.rng.workload
        ).loads:
            workload.add(item)
    result = sim.run(workload, RunControl(FAULT_CYCLES, FAULT_WARMUP))
    return result, sim.schedule.text()


def _dead_link_pairs():
    out = {}
    for seed in FAULT_SEEDS:
        healthy, _ = _fault_run(seed, None)
        faulty, _ = _fault_run(
            seed, FaultConfig(dead_port=DEAD_PORT, dead_port_cycle=DEAD_PORT_CYCLE)
        )
        out[seed] = (healthy, faulty)
    return out


@pytest.mark.benchmark(group="s1-robustness")
def test_s1_dead_link_sheds_best_effort_first(benchmark):
    """A dead link mid-run must cost best-effort traffic, not CBR QoS.

    The harness kills one input port at 70% CBR + 20% best-effort load.
    The victims are torn down and re-admitted on surviving ports, the
    degradation policy sheds best-effort first, and the surviving CBR
    connections must keep both their delivery and their delay bound.
    """
    pairs = benchmark.pedantic(_dead_link_pairs, rounds=1, iterations=1)
    print()
    rows = []
    for seed, (healthy, faulty) in pairs.items():
        cbr_keep = faulty.flits["high"] / healthy.flits["high"]
        be_keep = faulty.flits["best-effort"] / healthy.flits["best-effort"]
        rows.append([
            seed,
            f"{cbr_keep:.1%}",
            f"{be_keep:.1%}",
            f"{healthy.flit_delay_p99_us['high']:.2f}",
            f"{faulty.flit_delay_p99_us['high']:.2f}",
            faulty.fault["teardowns"],
            faulty.fault["readmitted"],
        ])
    print(render_table(
        ["seed", "CBR kept", "BE kept", "CBR p99 µs (healthy)",
         "CBR p99 µs (dead link)", "teardowns", "readmitted"],
        rows,
        title="S1-R fault — dead link at 70% load: "
              "best-effort sheds first, CBR holds",
    ))

    for seed, (healthy, faulty) in pairs.items():
        assert faulty.fault["injected_dead_port"] == 1, seed
        assert faulty.degradation_level >= 1, seed
        # Every torn-down victim was recovered (re-admitted elsewhere) or
        # explicitly dropped — none silently vanished.
        assert faulty.fault["teardowns"] == (
            faulty.fault["readmitted"] + faulty.fault["connections_dropped"]
        ), seed

        cbr_keep = faulty.flits["high"] / healthy.flits["high"]
        be_keep = faulty.flits["best-effort"] / healthy.flits["best-effort"]
        # CBR delivery survives essentially intact; best-effort is shed.
        assert cbr_keep > 0.99, (seed, cbr_keep)
        assert be_keep < 0.5, (seed, be_keep)
        # Degradation order: best-effort loses strictly more than CBR.
        assert (1 - be_keep) > (1 - cbr_keep), seed

        # Surviving CBR keeps its delay bound: mean and p99 stay within
        # 1.6x of the healthy baseline (measured overhead is ~1.25x from
        # re-admission transients).
        assert faulty.flit_delay_us["high"] < 1.6 * healthy.flit_delay_us["high"], seed
        assert (
            faulty.flit_delay_p99_us["high"]
            < 1.6 * healthy.flit_delay_p99_us["high"]
        ), seed


def _corruption_sweep():
    healthy, _ = _fault_run(101, None, be_load=0.0)
    sweep = {}
    for rate in (0.002, 0.01, 0.04):
        sweep[rate] = _fault_run(
            101, FaultConfig(corruption_rate=rate), be_load=0.0
        )
    return healthy, sweep


@pytest.mark.benchmark(group="s1-robustness")
def test_s1_corruption_costs_retransmissions_not_flits(benchmark):
    """CRC + NACK turns corruption into latency, never into loss.

    Retransmissions grow with the injection rate, but every corrupted
    flit is detected, no delivered flit is lost, and the CBR delay stays
    at its healthy level — the retransmit happens at the NIC head before
    the flit enters the router, so QoS never sees it.
    """
    healthy, sweep = benchmark.pedantic(_corruption_sweep, rounds=1, iterations=1)
    print()
    rows = []
    for rate, (result, _) in sweep.items():
        rows.append([
            f"{rate:.1%}",
            result.fault["injected_corruption"],
            result.fault["retransmissions"],
            result.fault["flits_dropped"],
            f"{result.flit_delay_us['high']:.3f}",
            f"{result.throughput:.4f}",
        ])
    print(render_table(
        ["corruption rate", "injected", "retransmitted", "flits lost",
         "CBR delay µs", "throughput"],
        rows,
        title="S1-R fault — corruption rate sweep at 70% CBR load "
              f"(healthy delay {healthy.flit_delay_us['high']:.3f} µs)",
    ))

    last = 0
    for rate, (result, text) in sweep.items():
        # Detection is exhaustive and retransmission is lossless.
        assert result.fault["crc_detected"] == result.fault["injected_corruption"]
        assert result.fault["retransmissions"] == result.fault["crc_detected"]
        assert result.fault["flits_dropped"] == 0, rate
        # More injection, more retransmissions — strictly monotone.
        assert result.fault["retransmissions"] > last, rate
        last = result.fault["retransmissions"]
        # CBR QoS is insulated from the retransmit traffic.
        assert result.flit_delay_us["high"] < 1.2 * healthy.flit_delay_us["high"]
        assert result.throughput > 0.995 * healthy.throughput, rate

    # Determinism: replaying one sweep point reproduces the schedule and
    # the result byte for byte.
    rate = 0.01
    replay, replay_text = _fault_run(
        101, FaultConfig(corruption_rate=rate), be_load=0.0
    )
    assert replay_text == sweep[rate][1]
    assert replay.fault == sweep[rate][0].fault
    assert replay.throughput == sweep[rate][0].throughput
