"""F8 — Fig. 8: average crossbar utilization vs generated load, VBR.

The paper's Fig. 8 plots crossbar utilization against generated MPEG-2
load for the SR and BB injection models.  Its reading (§5.2): with WFA,
performance degrades from ~75% generated load (utilization stops
tracking the generated load); with COA the saturation point moves to
~85%.

Shape claims asserted:
  * below both knees, utilization tracks generated load for both
    arbiters (the crossbar delivers what the sources generate);
  * WFA's utilization detaches from generated load at a lower load than
    COA's, and COA holds at least to ~80%.
"""

import pytest

from conftest import vbr_result
from repro.analysis import knee_by_deficit, render_series, render_xy_plot


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("model", ["SR", "BB"])
def test_fig8_vbr_crossbar_utilization(benchmark, model):
    result = benchmark.pedantic(
        lambda: vbr_result(model), rounds=1, iterations=1
    )
    arbiters = ("coa", "wfa")
    series = {a: result.utilization_series(a) for a in arbiters}
    print()
    print(render_series(
        "load %", series,
        title=f"Fig. 8 ({model} injection model) — "
              "avg crossbar utilization (%)",
    ))
    print(render_xy_plot(
        series,
        title=f"Fig. 8 ({model}) as a plot",
        x_label="generated load %", y_label="utilization %",
    ))

    util = {
        a: [(p.offered_load, p.result.utilization)
            for p in result.sweeps[a].points]
        for a in arbiters
    }
    sat = {a: knee_by_deficit(util[a], tolerance=0.04) for a in arbiters}
    print(f"Utilization saturation: COA {sat['coa']:.0%}  WFA {sat['wfa']:.0%} "
          f"(paper: ~85% vs ~75%)")

    # Below 60% load both arbiters deliver the generated load.
    for a in arbiters:
        for load, u in util[a]:
            if load <= 0.6:
                assert u == pytest.approx(load, rel=0.08), (a, load, u)

    # WFA detaches first; COA holds into the 80s.
    assert sat["wfa"] <= 0.78, "WFA utilization must detach by ~75%"
    assert sat["coa"] >= 0.80, "COA utilization must track to >=80%"
    assert sat["coa"] > sat["wfa"]
