"""Tests for repro.router.vc_memory (VC buffers + interleaved RAM model)."""

import numpy as np
import pytest

from repro.router.config import RouterConfig
from repro.router.vc_memory import InterleavedRam, VCMemory


def make_mem(ports=2, vcs=4, depth=3) -> VCMemory:
    cfg = RouterConfig(num_ports=ports, vcs_per_link=vcs, vc_buffer_depth=depth,
                       candidate_levels=1)
    return VCMemory(cfg)


class TestFifoSemantics:
    def test_pop_returns_push_order(self):
        mem = make_mem()
        mem.push(0, 1, gen_cycle=10, frame_id=7, frame_last=False, now=12)
        mem.push(0, 1, gen_cycle=11, frame_id=7, frame_last=True, now=13)
        assert mem.pop(0, 1) == (10, 12, 7, False)
        assert mem.pop(0, 1) == (11, 13, 7, True)

    def test_ring_wraparound_preserves_order(self):
        mem = make_mem(depth=3)
        seq = list(range(10))
        produced = iter(seq)
        consumed = []
        # Interleave pushes and pops past several wraps.
        pending = 0
        for value in seq:
            mem.push(0, 0, value, -1, False, value)
            pending += 1
            if pending == 3:
                consumed.append(mem.pop(0, 0)[0])
                pending -= 1
        while pending:
            consumed.append(mem.pop(0, 0)[0])
            pending -= 1
        assert consumed == seq

    def test_overflow_raises(self):
        mem = make_mem(depth=2)
        mem.push(0, 0, 0, -1, False, 0)
        mem.push(0, 0, 1, -1, False, 1)
        with pytest.raises(OverflowError):
            mem.push(0, 0, 2, -1, False, 2)

    def test_pop_empty_raises(self):
        mem = make_mem()
        with pytest.raises(IndexError):
            mem.pop(0, 0)

    def test_vcs_are_independent(self):
        mem = make_mem()
        mem.push(0, 0, 100, -1, False, 100)
        mem.push(0, 1, 200, -1, False, 200)
        mem.push(1, 0, 300, -1, False, 300)
        assert mem.pop(0, 1)[0] == 200
        assert mem.pop(1, 0)[0] == 300
        assert mem.pop(0, 0)[0] == 100


class TestOccupancy:
    def test_occupancy_tracks_push_pop(self):
        mem = make_mem()
        assert mem.total_flits() == 0
        mem.push(0, 2, 0, -1, False, 0)
        assert mem.occupancy_of(0, 2) == 1
        assert mem.free_space(0, 2) == 2
        mem.pop(0, 2)
        assert mem.occupancy_of(0, 2) == 0
        assert mem.total_flits() == 0

    def test_occupancy_view_is_readonly(self):
        mem = make_mem()
        with pytest.raises(ValueError):
            mem.occupancy[0, 0] = 5


class TestHeads:
    def test_heads_reflect_head_flit(self):
        mem = make_mem()
        mem.push(0, 1, gen_cycle=5, frame_id=-1, frame_last=False, now=8)
        mem.push(0, 1, gen_cycle=6, frame_id=-1, frame_last=False, now=9)
        view = mem.heads(0)
        assert view.occupancy[1] == 2
        assert view.gen_cycle[1] == 5
        assert view.arrival_cycle[1] == 8
        mem.pop(0, 1)
        view = mem.heads(0)
        assert view.gen_cycle[1] == 6
        assert view.arrival_cycle[1] == 9

    def test_heads_all_matches_per_port(self):
        rng = np.random.default_rng(0)
        mem = make_mem(ports=3, vcs=5, depth=4)
        for _ in range(60):
            p, v = int(rng.integers(3)), int(rng.integers(5))
            if mem.free_space(p, v) and rng.random() < 0.7:
                t = int(rng.integers(1000))
                mem.push(p, v, t, -1, False, t + 1)
            elif mem.occupancy_of(p, v):
                mem.pop(p, v)
        batched = mem.heads_all()
        for p in range(3):
            single = mem.heads(p)
            np.testing.assert_array_equal(batched.occupancy[p], single.occupancy)
            occ = single.occupancy > 0
            np.testing.assert_array_equal(
                batched.gen_cycle[p][occ], single.gen_cycle[occ]
            )
            np.testing.assert_array_equal(
                batched.arrival_cycle[p][occ], single.arrival_cycle[occ]
            )

    def test_head_arrival_helper(self):
        mem = make_mem()
        mem.push(1, 3, 0, -1, False, 42)
        assert mem.head_arrival(1, 3) == 42


class TestInterleavedRam:
    def test_validation(self):
        with pytest.raises(ValueError):
            InterleavedRam(0, 4)
        with pytest.raises(ValueError):
            InterleavedRam(4, 0)
        with pytest.raises(ValueError):
            InterleavedRam(4, 4, num_modules=0)

    def test_address_in_range(self):
        ram = InterleavedRam(num_vcs=8, depth=4, num_modules=4)
        seen = set()
        for vc in range(8):
            for slot in range(4):
                module, offset = ram.address(vc, slot)
                assert 0 <= module < 4
                assert 0 <= offset < ram.words_per_module()
                seen.add((module, offset))
        # The mapping must be injective (no two buffers share a word).
        assert len(seen) == 8 * 4

    def test_address_bounds_checked(self):
        ram = InterleavedRam(4, 4)
        with pytest.raises(ValueError):
            ram.address(4, 0)
        with pytest.raises(ValueError):
            ram.address(0, 4)

    def test_sequential_fifo_access_is_conflict_free(self):
        # A push at the tail and a pop at the head of the same VC touch
        # different modules whenever the FIFO holds more than one flit
        # (adjacent slots interleave across modules).
        ram = InterleavedRam(num_vcs=16, depth=4, num_modules=4)
        for vc in range(16):
            for head in range(4):
                tail = (head + 2) % 4  # two flits buffered
                assert ram.conflicts([(vc, head), (vc, tail)]) == 0

    def test_conflicts_counts_collisions(self):
        ram = InterleavedRam(num_vcs=8, depth=4, num_modules=4)
        # Same (vc, slot) twice must collide.
        assert ram.conflicts([(0, 0), (0, 0)]) == 1
        # vc 0 slot 0 and vc 4 slot 0 share module (4+0) % 4 == 0.
        assert ram.conflicts([(0, 0), (4, 0)]) == 1


class TestSparseOccupancyView:
    """occupied_heads / occupancy_state vs the dense head view."""

    def _dense_truth(self, mem, ports, vcs):
        heads = mem.heads_all()
        flat, arrivals = [], []
        for p in range(ports):
            for vc in range(vcs):
                if heads.occupancy[p, vc]:
                    flat.append(p * vcs + vc)
                    arrivals.append(int(heads.arrival_cycle[p, vc]))
        return flat, arrivals

    def test_empty_memory(self):
        mem = make_mem()
        assert mem.occupied_heads() == ([], [])
        mask, _q = mem.occupancy_state()
        assert mask == 0

    def test_matches_dense_view_under_random_traffic(self):
        ports, vcs, depth = 3, 5, 4
        mem = make_mem(ports=ports, vcs=vcs, depth=depth)
        rng = np.random.default_rng(17)
        now = 0
        for _ in range(400):
            now += 1
            p, vc = int(rng.integers(ports)), int(rng.integers(vcs))
            if rng.random() < 0.55 and mem.free_space(p, vc):
                mem.push(p, vc, now - 1, -1, False, now)
            elif mem.occupancy_of(p, vc):
                mem.pop(p, vc)
            assert mem.occupied_heads() == self._dense_truth(mem, ports, vcs)

    def test_occupancy_state_mirrors_occupied_heads(self):
        ports, vcs = 2, 4
        mem = make_mem(ports=ports, vcs=vcs)
        mem.push(0, 1, 0, -1, False, 5)
        mem.push(0, 1, 0, -1, False, 6)  # second flit: head arrival stays 5
        mem.push(1, 3, 0, -1, False, 9)
        mask, heads_q = mem.occupancy_state()
        flat, arrivals = mem.occupied_heads()
        assert flat == [0 * vcs + 1, 1 * vcs + 3]
        assert arrivals == [5, 9]
        assert mask == sum(1 << f for f in flat)
        assert [heads_q[f][0] for f in flat] == arrivals
        # Popping the head exposes the second flit's arrival.
        mem.pop(0, 1)
        _flat, arrivals = mem.occupied_heads()
        assert arrivals == [6, 9]

    def test_pop_returns_mirrored_arrival(self):
        """pop's arrival must come from the same clock the sparse view uses."""
        mem = make_mem(depth=4)
        for now in (3, 8, 13):
            mem.push(0, 0, now - 3, -1, False, now)
        assert [mem.pop(0, 0)[1] for _ in range(3)] == [3, 8, 13]
