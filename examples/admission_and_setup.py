#!/usr/bin/env python3
"""Connection admission control and PCS setup in the MMR.

Demonstrates the control plane the data-plane experiments take for
granted: pipelined-circuit-switching setup probes, per-link bandwidth
accounting in flit-cycle slots per round, the CBR admission rule
(sum of reservations <= round) and the VBR rule (average within the
round AND peak within round x concurrency factor), plus what happens
when virtual channels run out.

Run:  python examples/admission_and_setup.py
"""

from repro import MMRouter, RouterConfig, TrafficClass
from repro.analysis import render_table


def attempt(router, description, *args, **kwargs):
    result = router.establish(*args, **kwargs)
    status = "ACCEPTED" if result.accepted else "rejected"
    detail = (
        f"vc {result.connection.vc}" if result.accepted else result.reason
    )
    print(f"  {description:<46} {status:<9} ({detail})")
    return result


def main() -> None:
    config = RouterConfig(
        num_ports=4,
        vcs_per_link=4,              # tiny, to show VC exhaustion
        candidate_levels=2,
        flit_cycles_per_round=4_000,
        concurrency_factor=2.0,
    )
    router = MMRouter(config)
    round_slots = config.round_cycles
    print(
        f"Round = {round_slots} flit cycles; one slot/round = "
        f"{config.slots_to_rate(1) / 1e3:.0f} Kbps; concurrency factor = "
        f"{config.concurrency_factor}"
    )
    print("\nCBR admissions on input 0 -> output 1:")
    attempt(router, "CBR 50% of the link", 0, 1, TrafficClass.CBR,
            avg_slots=round_slots // 2)
    attempt(router, "CBR 40% of the link", 0, 1, TrafficClass.CBR,
            avg_slots=round_slots * 2 // 5)
    attempt(router, "CBR 20% of the link (would exceed 100%)", 0, 1,
            TrafficClass.CBR, avg_slots=round_slots // 5)

    print("\nVBR admissions on input 1 -> output 2 (peak vs concurrency):")
    attempt(router, "VBR avg 30%, peak 120% of a round", 1, 2,
            TrafficClass.VBR, avg_slots=round_slots * 3 // 10,
            peak_slots=round_slots * 12 // 10)
    attempt(router, "VBR avg 30%, peak 120% (peaks now sum to 240%)", 1, 2,
            TrafficClass.VBR, avg_slots=round_slots * 3 // 10,
            peak_slots=round_slots * 12 // 10)

    print("\nBest-effort needs no bandwidth, only a free VC (input 2):")
    for k in range(5):
        attempt(router, f"best-effort connection #{k + 1}", 2, 3,
                TrafficClass.BEST_EFFORT, avg_slots=1)

    print("\nPer-link reservation state:")
    rows = [
        [p,
         f"{router.admission.reserved_avg_load(p):.0%}",
         f"{router.admission.reserved_avg_load_out(p):.0%}"]
        for p in range(config.num_ports)
    ]
    print(render_table(["port", "input reserved", "output reserved"], rows))

    print("\nTearing down the 50% CBR connection frees its budget:")
    router.teardown(0)
    attempt(router, "CBR 50% of the link (retry)", 0, 1, TrafficClass.CBR,
            avg_slots=round_slots // 2)


if __name__ == "__main__":
    main()
