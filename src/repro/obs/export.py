"""Telemetry session wiring, artifact schema, and the obs benchmark.

:class:`TelemetrySession` is the one object the simulation loops talk to.
It owns the QoS tracker, the time-series recorder, and the flight
recorder, and pulls the per-group delay histograms out of the metrics
collector at the end of the run (the collector records them anyway — the
telemetry layer never duplicates per-departure histogram work).

The hot-path contract is deliberately tiny — two calls:

* ``session.on_cycle(now, departures)`` once per cycle, and
* ``session.register_connection(conn, label)`` when fault recovery
  re-admits a connection mid-run.

Everything else (``begin``/``finish``/``export``) runs outside the loop.
A session is an *observer*: it draws no RNG and mutates no router state,
so an instrumented run produces bit-identical results to a plain one
(asserted by the differential tests and re-checked by the benchmark).

Artifacts (``export``) and their schema:

* ``telemetry.json`` — the full payload (schema ``repro-telemetry-v1``):
  config echo, QoS summary, per-group delay/jitter histograms,
  time-series summary + rows, flight-recorder dumps.
* ``timeseries.jsonl`` / ``timeseries.csv`` — one sample per line; see
  :data:`repro.obs.timeseries.TIMESERIES_FIELDS` and
  :func:`validate_timeseries_jsonl`.
* ``qos.json`` — the QoS summary alone.
* ``flight.txt`` — rendered flight dumps (empty runs say so).

The module-level imports stay within ``repro.obs`` + stdlib on purpose:
``repro.sim.metrics`` imports this package, so importing ``repro.sim`` or
``repro.perf`` here would be circular (they are imported lazily inside
the benchmark functions instead).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from time import perf_counter_ns
from typing import TYPE_CHECKING, Any, Mapping

from .flight import FlightRecorder
from .qos import QosTracker
from .timeseries import TIMESERIES_FIELDS, TimeSeriesRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..router.connection import Connection
    from ..router.crossbar import Departure
    from ..router.router import MMRouter
    from ..sim.metrics import MetricsCollector
    from ..sim.simulation import SimResult

__all__ = [
    "TELEMETRY_SCHEMA",
    "TelemetryConfig",
    "TelemetrySession",
    "validate_timeseries_jsonl",
    "ObsBenchReport",
    "run_obs_bench",
    "check_obs_overhead",
    "write_obs_report",
]

#: Telemetry artifact schema identifier (bump on breaking payload change).
TELEMETRY_SCHEMA = "repro-telemetry-v1"


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for one telemetry session (all JSON-serializable)."""

    #: Cycles between time-series samples.
    stride: int = 64
    #: Ring capacity of the time-series recorder (samples retained).
    timeseries_capacity: int = 4096
    #: Active cycles retained by the flight recorder.
    flight_cycles: int = 256
    #: Deadline = ``deadline_scale * service_interval + pipeline_slack``.
    deadline_scale: float = 2.0
    #: Burst trigger: this many deadline violations within the window.
    burst_window: int = 512
    burst_threshold: int = 32

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetryConfig":
        return cls(**dict(data))


class TelemetrySession:
    """One run's telemetry: QoS + time series + flight recorder."""

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.router: "MMRouter | None" = None
        self.metrics: "MetricsCollector | None" = None
        self.qos: QosTracker | None = None
        self.timeseries: TimeSeriesRecorder | None = None
        self.flight: FlightRecorder | None = None
        self.result: "SimResult | None" = None
        self._histograms: dict[str, dict[str, Any]] = {}
        self._run_info: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin(self, router: "MMRouter", workload, metrics, control) -> None:
        """Bind to one run; registers the workload's connections."""
        cfg = self.config
        self.router = router
        self.metrics = metrics
        self.qos = QosTracker(
            router.config,
            deadline_scale=cfg.deadline_scale,
            burst_window=cfg.burst_window,
            burst_threshold=cfg.burst_threshold,
            on_burst=self._on_qos_burst,
        )
        self.timeseries = TimeSeriesRecorder(
            stride=cfg.stride, capacity=cfg.timeseries_capacity
        )
        self.flight = FlightRecorder(capacity=cfg.flight_cycles)
        for item in workload.loads:
            self.qos.register(item.conn, item.label)
        self._run_info = {
            "cycles": control.cycles,
            "warmup_cycles": control.warmup_cycles,
        }

    def register_connection(self, conn: "Connection", label: str) -> None:
        """Track a connection established mid-run (fault re-admission)."""
        if self.qos is not None:
            self.qos.register(conn, label)

    def on_cycle(self, now: int, departures: list["Departure"]) -> None:
        """Per-cycle hook (hot path): QoS, flight ring, strided sampling."""
        if departures:
            self.flight.on_cycle(now, departures)
            on_dep = self.qos.on_departure
            for dep in departures:
                on_dep(dep, now)
        if now % self.config.stride == 0:
            self.timeseries.sample(now, self.router)

    def next_event_cycle(self, now: int) -> int:
        """Earliest cycle >= ``now`` where :meth:`on_cycle` does work.

        On a departure-free cycle the hook touches nothing except the
        strided time-series sample, so the event-skipping engine may
        jump straight to the next stride multiple; it clamps its target
        here so no sample is ever silenced.
        """
        stride = self.config.stride
        return now + (-now % stride)

    def finish(self, result: "SimResult") -> None:
        """Seal the session: keep the result, pull the delay histograms."""
        self.result = result
        metrics = self.metrics
        if metrics is None:
            return
        for name in ("flit_delay", "frame_delay", "jitter"):
            per_group: dict[str, Any] = {}
            for label, group in sorted(metrics.groups.items()):
                hist = getattr(group, name).histogram
                if hist is not None and hist.n:
                    per_group[label] = hist.to_dict()
            overall = getattr(metrics.overall, name).histogram
            if overall is not None and overall.n:
                per_group["overall"] = overall.to_dict()
            self._histograms[name] = per_group

    # ------------------------------------------------------------------
    # Flight triggers
    # ------------------------------------------------------------------

    def on_watchdog_trip(self, now: int, kind: str, dump: str) -> None:
        """Wired to :attr:`repro.faults.watchdog.SimWatchdog.on_trip`."""
        if self.flight is not None and self.router is not None:
            self.flight.trigger(self.router, now, f"watchdog:{kind}")

    def _on_qos_burst(self, now: int, violations: int) -> None:
        self.flight.trigger(
            self.router,
            now,
            "qos_burst",
            f"{violations} deadline violations within the last "
            f"{self.config.burst_window} cycles",
        )

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """The full JSON-safe telemetry artifact (deterministic)."""
        if self.qos is None:
            raise RuntimeError("telemetry session was never started (begin)")
        return {
            "schema": TELEMETRY_SCHEMA,
            "config": self.config.to_dict(),
            "run": dict(self._run_info),
            "qos": self.qos.summary(),
            "histograms": self._histograms,
            "timeseries": self.timeseries.to_payload(),
            "flight": self.flight.to_payload(),
        }

    def export(self, outdir: str | Path) -> dict[str, Path]:
        """Write all artifact files under ``outdir``; returns their paths."""
        outdir = Path(outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        payload = self.to_payload()
        paths: dict[str, Path] = {}

        def write(name: str, text: str) -> None:
            path = outdir / name
            path.write_text(text, encoding="utf-8")
            paths[name] = path

        write(
            "telemetry.json",
            json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
            + "\n",
        )
        write(
            "qos.json",
            json.dumps(payload["qos"], indent=2, sort_keys=True,
                       allow_nan=False) + "\n",
        )
        write("timeseries.jsonl", self.timeseries.to_jsonl())
        write("timeseries.csv", self.timeseries.to_csv())
        dumps = self.flight.dumps
        flight_text = (
            "\n\n".join(d.render() for d in dumps)
            if dumps
            else "(no flight dumps: no watchdog trip or QoS burst)"
        )
        write("flight.txt", flight_text + "\n")
        return paths


# ----------------------------------------------------------------------
# Schema validation (CI obs-smoke)
# ----------------------------------------------------------------------

_ROW_TYPES = {
    "cycle": int,
    "buffered_flits": int,
    "credits_in_flight": int,
}


def validate_timeseries_jsonl(text: str) -> list[str]:
    """Validate exported time-series JSONL; returns a list of problems.

    Empty list = valid.  Checks: every line parses as a JSON object with
    exactly the schema's fields, integer counters are non-negative ints,
    utilizations are floats in [0, 1], ``nic_backlog`` is a list of
    non-negative ints, and cycles are strictly increasing.
    """
    errors: list[str] = []
    expected = set(TIMESERIES_FIELDS)
    prev_cycle: int | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            errors.append(f"line {lineno}: blank line")
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not JSON ({exc})")
            continue
        if not isinstance(row, dict):
            errors.append(f"line {lineno}: not a JSON object")
            continue
        got = set(row)
        if got != expected:
            missing = expected - got
            extra = got - expected
            errors.append(
                f"line {lineno}: fields mismatch"
                + (f" missing={sorted(missing)}" if missing else "")
                + (f" extra={sorted(extra)}" if extra else "")
            )
            continue
        for name, kind in _ROW_TYPES.items():
            value = row[name]
            if not isinstance(value, kind) or isinstance(value, bool):
                errors.append(f"line {lineno}: {name} not an int: {value!r}")
            elif value < 0:
                errors.append(f"line {lineno}: {name} negative: {value}")
        for name in ("utilization", "utilization_cum"):
            value = row[name]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"line {lineno}: {name} not a number: {value!r}")
            elif not (0.0 <= float(value) <= 1.0):
                errors.append(f"line {lineno}: {name} out of [0,1]: {value}")
        backlog = row["nic_backlog"]
        if not isinstance(backlog, list) or not all(
            isinstance(b, int) and not isinstance(b, bool) and b >= 0
            for b in backlog
        ):
            errors.append(
                f"line {lineno}: nic_backlog not a list of non-negative "
                f"ints: {backlog!r}"
            )
        cycle = row["cycle"]
        if isinstance(cycle, int) and not isinstance(cycle, bool):
            if prev_cycle is not None and cycle <= prev_cycle:
                errors.append(
                    f"line {lineno}: cycle {cycle} not increasing "
                    f"(previous {prev_cycle})"
                )
            prev_cycle = cycle
    return errors


# ----------------------------------------------------------------------
# Overhead benchmark (BENCH_obs.json)
# ----------------------------------------------------------------------


@dataclass
class ObsBenchStats:
    """One variant's timing (best of the interleaved repetitions)."""

    cycles_per_sec: float
    wall_s: float
    wall_s_all: list[float] = field(default_factory=list)


@dataclass
class ObsBenchReport:
    """Everything ``BENCH_obs.json`` records."""

    ports: int
    vcs: int
    levels: int
    arbiter: str
    scheme: str
    load: float
    seed: int
    cycles: int
    repeats: int
    stride: int
    plain: ObsBenchStats
    disabled: ObsBenchStats
    enabled: ObsBenchStats
    #: (disabled - plain) / plain: cost of the dispatch branch alone.
    overhead_disabled: float
    #: (enabled - disabled) / disabled: cost of full telemetry.
    overhead_enabled: float
    #: Enabled and disabled runs produced identical results AND left the
    #: RNG streams in bit-identical states (telemetry is a pure observer).
    results_identical: bool
    #: Telemetry volume context for the enabled run.
    telemetry_samples: int
    qos_violations: int

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


def run_obs_bench(
    *,
    ports: int = 4,
    vcs: int = 64,
    levels: int = 4,
    arbiter: str = "coa",
    scheme: str = "siabp",
    load: float = 0.7,
    seed: int = 0,
    cycles: int = 20_000,
    repeats: int = 5,
    stride: int = 64,
) -> ObsBenchReport:
    """Measure telemetry overhead on the paper config, best-of-N.

    Three variants are timed with interleaved repetitions (plain,
    disabled, enabled, plain, ...) so background-load bursts hit all of
    them: *plain* calls ``run`` without the telemetry argument, *disabled*
    passes ``telemetry=None`` explicitly (same code path — the delta is
    pure measurement noise and is the disabled-overhead bound), *enabled*
    runs a full :class:`TelemetrySession`.
    """
    from ..perf.harness import make_cbr_sim
    from ..sim.engine import RunControl

    control = RunControl(cycles=cycles, warmup_cycles=0)

    def timed(telemetry_mode: str) -> tuple[float, "SimResult", Any]:
        sim, workload = make_cbr_sim(
            ports, vcs, levels, arbiter, scheme, load, seed, True
        )
        session = None
        t0 = perf_counter_ns()
        if telemetry_mode == "plain":
            result = sim.run(workload, control)
        elif telemetry_mode == "disabled":
            result = sim.run(workload, control, telemetry=None)
        else:
            session = TelemetrySession(TelemetryConfig(stride=stride))
            result = sim.run(workload, control, telemetry=session)
        wall = (perf_counter_ns() - t0) / 1e9
        return wall, result, (sim.rng.state_fingerprint(), session)

    plain_walls: list[float] = []
    disabled_walls: list[float] = []
    enabled_walls: list[float] = []
    disabled_result = enabled_result = None
    disabled_fp = enabled_fp = None
    last_session: TelemetrySession | None = None
    for _ in range(repeats):
        wall, _, _ = timed("plain")
        plain_walls.append(wall)
        wall, disabled_result, (disabled_fp, _) = timed("disabled")
        disabled_walls.append(wall)
        wall, enabled_result, (enabled_fp, last_session) = timed("enabled")
        enabled_walls.append(wall)

    def stats(walls: list[float]) -> ObsBenchStats:
        best = min(walls)
        return ObsBenchStats(
            cycles_per_sec=cycles / best if best > 0 else float("inf"),
            wall_s=best,
            wall_s_all=walls,
        )

    plain = stats(plain_walls)
    disabled = stats(disabled_walls)
    enabled = stats(enabled_walls)
    identical = (
        disabled_result is not None
        and enabled_result is not None
        and disabled_result.to_dict() == enabled_result.to_dict()
        and disabled_fp == enabled_fp
    )
    assert last_session is not None and last_session.timeseries is not None
    return ObsBenchReport(
        ports=ports,
        vcs=vcs,
        levels=levels,
        arbiter=arbiter,
        scheme=scheme,
        load=load,
        seed=seed,
        cycles=cycles,
        repeats=repeats,
        stride=stride,
        plain=plain,
        disabled=disabled,
        enabled=enabled,
        overhead_disabled=(disabled.wall_s - plain.wall_s) / plain.wall_s,
        overhead_enabled=(enabled.wall_s - disabled.wall_s) / disabled.wall_s,
        results_identical=identical,
        telemetry_samples=last_session.timeseries.samples_taken,
        qos_violations=(
            last_session.qos.total_violations() if last_session.qos else 0
        ),
    )


def check_obs_overhead(
    report: ObsBenchReport,
    max_disabled: float = 0.01,
    max_enabled: float = 0.05,
) -> tuple[bool, str]:
    """Gate the measured overheads (CI); returns ``(ok, message)``.

    Negative measured overheads (timing noise) count as zero.
    """
    problems = []
    disabled = max(0.0, report.overhead_disabled)
    enabled = max(0.0, report.overhead_enabled)
    if disabled > max_disabled:
        problems.append(
            f"disabled-path overhead {disabled:.2%} > {max_disabled:.2%}"
        )
    if enabled > max_enabled:
        problems.append(
            f"enabled-path overhead {enabled:.2%} > {max_enabled:.2%}"
        )
    if not report.results_identical:
        problems.append(
            "telemetry-enabled run diverged from the disabled run "
            "(results or RNG state differ)"
        )
    if problems:
        return False, "; ".join(problems)
    return True, (
        f"telemetry overhead OK: disabled {disabled:.2%} "
        f"(max {max_disabled:.2%}), enabled {enabled:.2%} "
        f"(max {max_enabled:.2%}), results identical"
    )


def write_obs_report(report: ObsBenchReport, path: str | Path) -> Path:
    """Serialize the report to JSON (the ``BENCH_obs.json`` format)."""
    path = Path(path)
    path.write_text(
        json.dumps(report.to_dict(), indent=2, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return path
