"""Periodic campaign progress / ETA / points-per-second telemetry.

Reports go to stderr (stdout stays clean for result tables) at a bounded
rate: at most one line per ``interval_s``, plus a final summary line.
Cache hits complete in microseconds, so rate and ETA are computed over
*computed* (miss) points only — that is the number that predicts the
remaining wall time.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, TextIO

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Throttled progress lines for a campaign run."""

    def __init__(
        self,
        total: int,
        stream: TextIO | None = None,
        interval_s: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if total <= 0:
            raise ValueError("total must be positive")
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self._clock = clock
        self._start = clock()
        self._last_emit = float("-inf")
        self.done = 0
        self.hits = 0
        self.retries = 0
        self._final_emitted = False

    # ------------------------------------------------------------------

    def point_done(self, cached: bool, attempts: int = 1) -> None:
        """Record one finished point and maybe emit a progress line."""
        self.done += 1
        if cached:
            self.hits += 1
        self.retries += max(0, attempts - 1)
        self._maybe_emit()

    def finish(self) -> None:
        """Emit the final summary line (once)."""
        if not self._final_emitted:
            self._emit()

    # ------------------------------------------------------------------

    def _maybe_emit(self) -> None:
        now = self._clock()
        if self.done >= self.total or now - self._last_emit >= self.interval_s:
            self._emit(now)

    def rate(self, now: float | None = None) -> float:
        """Computed (non-cached) points per second so far."""
        elapsed = (now if now is not None else self._clock()) - self._start
        computed = self.done - self.hits
        return computed / elapsed if elapsed > 0 else float("inf")

    def eta_s(self, now: float | None = None) -> float:
        """Seconds left, assuming remaining points are all misses."""
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        r = self.rate(now)
        return remaining / r if r > 0 else float("inf")

    def _emit(self, now: float | None = None) -> None:
        now = now if now is not None else self._clock()
        self._last_emit = now
        if self.done >= self.total:
            self._final_emitted = True
        elapsed = now - self._start
        parts = [
            f"campaign: {self.done}/{self.total} points",
            f"{self.hits} cached",
            f"{self.rate(now):.2f} pts/s",
            f"elapsed {elapsed:.1f}s",
        ]
        if self.done < self.total:
            eta = self.eta_s(now)
            parts.append("ETA ?" if eta == float("inf") else f"ETA {eta:.0f}s")
        if self.retries:
            parts.append(f"{self.retries} retries")
        print(" · ".join(parts), file=self.stream, flush=True)
