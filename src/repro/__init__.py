"""repro — reproduction of the Multimedia Router switch-scheduling study.

Caminero, Carrión, Quiles, Duato, Yalamanchili: *Investigating Switch
Scheduling Algorithms to Support QoS in the Multimedia Router*
(IPDPS 2002 workshops).

Public API tour
---------------

Router substrate (``repro.router``)
    :class:`RouterConfig`, :class:`MMRouter` and the subsystems it
    composes (VC memory, credit flow control, NICs, crossbar, admission).

Scheduling algorithms (``repro.core``)
    Priority biasing (:class:`SIABP`, :class:`IABP`), the link scheduler,
    and the arbiters: :class:`CandidateOrderArbiter` (the paper's
    proposal), :class:`WaveFrontArbiter` (its baseline), iSLIP, PIM.

Workloads (``repro.traffic``)
    CBR classes, MPEG-2 trace synthesis, SR/BB VBR injection,
    best-effort, and the mix builders.

Experiments (``repro.sim``)
    :class:`SingleRouterSim`, load sweeps, and one function per paper
    figure (:func:`cbr_delay_experiment`, :func:`vbr_experiment`).

Quickstart
----------

>>> from repro import SingleRouterSim, RunControl, default_config
>>> from repro.traffic import build_cbr_workload
>>> sim = SingleRouterSim(default_config(), arbiter="coa", seed=1)
>>> wl = build_cbr_workload(sim.router, 0.5, sim.rng.workload)
>>> res = sim.run(wl, RunControl(cycles=20_000, warmup_cycles=2_000))
>>> res.utilization  # doctest: +SKIP
0.49
"""

from .core import (
    ARBITER_NAMES,
    SCHEME_NAMES,
    CandidateOrderArbiter,
    ISLIP,
    PIM,
    SIABP,
    IABP,
    WaveFrontArbiter,
    make_arbiter,
    make_scheme,
)
from .router import MMRouter, RouterConfig, TrafficClass
from .sim import (
    RunControl,
    SimResult,
    SingleRouterSim,
    cbr_delay_experiment,
    default_config,
    vbr_experiment,
)

__version__ = "1.0.0"

__all__ = [
    "ARBITER_NAMES",
    "SCHEME_NAMES",
    "CandidateOrderArbiter",
    "ISLIP",
    "PIM",
    "SIABP",
    "IABP",
    "WaveFrontArbiter",
    "make_arbiter",
    "make_scheme",
    "MMRouter",
    "RouterConfig",
    "TrafficClass",
    "RunControl",
    "SimResult",
    "SingleRouterSim",
    "cbr_delay_experiment",
    "default_config",
    "vbr_experiment",
    "__version__",
]
