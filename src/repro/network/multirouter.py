"""Multi-router MMR networks (the paper's §6 "future work" extension).

The paper evaluates a single MMR and explicitly defers the multi-router
study ("this study must be further extended to a network composed of
several MMRs").  This module builds that extension on the same
subsystems: every node is a full :class:`~repro.router.MMRouter`; routers
are wired by a :class:`~repro.network.topology.Topology`; connections are
set up hop by hop with pipelined circuit switching (a VC and a bandwidth
reservation on every traversed link, as the MMR's probe would do); and
credit-based flow control covers the inter-router links exactly as it
covers the NIC links.

Port convention: on a router of degree ``d``, ports ``0..d-1`` are the
inter-router links (indexed by the topology's port map) and the remaining
ports attach host NICs.

Scheduling detail: a head flit bound for a downstream router may only
compete for the crossbar when the downstream VC buffer has space (the
upstream router holds its credits).  The network step therefore filters
the link scheduler's candidates by downstream credit before arbitration —
the same eligibility rule the NIC link controller applies on the host
links.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..faults.models import FaultKind
from ..faults.schedule import FaultSchedule
from ..router.config import RouterConfig
from ..router.connection import Connection, TrafficClass
from ..router.router import MMRouter
from ..sim.engine import generator_fingerprint, router_rng
from ..sim.metrics import StreamingStat
from .topology import Topology

__all__ = [
    "NetworkConnection",
    "MultiRouterNetwork",
    "RouterShard",
    "merge_delay_parts",
]


def merge_delay_parts(
    parts: "list[tuple[int, float, float]]",
) -> tuple[int, float, float]:
    """Fold per-router ``(n, total, max)`` delay parts in list order.

    The fixed merge order behind the sharded-execution identity
    contract: serial per-router runs and sharded runs both fold their
    per-router accumulators in ascending router-id order, so the float
    sums come out bit-identical on both sides.
    """
    n = 0
    total = 0.0
    mx = float("-inf")
    for pn, ptotal, pmax in parts:
        n += pn
        total += ptotal
        if pmax > mx:
            mx = pmax
    return n, total, mx


@dataclass(frozen=True)
class NetworkConnection:
    """A multi-hop connection: one Connection (VC + reservation) per hop."""

    net_conn_id: int
    src_router: int
    dst_router: int
    router_path: tuple[int, ...]
    hops: tuple[Connection, ...]
    avg_slots: int
    peak_slots: int

    @property
    def num_hops(self) -> int:
        return len(self.hops)


class MultiRouterNetwork:
    """A network of MMRs with PCS setup and credit-controlled links."""

    def __init__(
        self,
        topology: Topology,
        config: RouterConfig,
        arbiter: str = "coa",
        scheme: str = "siabp",
        schedule: FaultSchedule | None = None,
        owned: "frozenset[int] | set[int] | None" = None,
        per_router_stats: bool = False,
    ) -> None:
        if config.num_ports <= topology.max_degree():
            raise ValueError(
                f"config.num_ports ({config.num_ports}) must exceed the "
                f"topology's max degree ({topology.max_degree()}) to leave "
                "host ports"
            )
        self.topology = topology
        self.config = config
        self.routers = [
            MMRouter(config, arbiter, scheme) for _ in range(topology.num_routers)
        ]
        #: Routers this instance data-plane-steps.  Control operations
        #: (establish/release/ledgers) always span every router; only
        #: stepping, injection, and buffered-flit accounting restrict to
        #: the owned set.  Default: all routers (serial execution).
        if owned is None:
            self.owned = frozenset(range(topology.num_routers))
        else:
            self.owned = frozenset(owned)
            bad = self.owned - set(range(topology.num_routers))
            if bad:
                raise ValueError(f"owned routers out of range: {sorted(bad)}")
        self._owned_order = sorted(self.owned)
        self._all_owned = len(self.owned) == topology.num_routers
        #: Boundary egress: flits / credit returns whose destination
        #: router another shard owns, accumulated between barriers.
        #: Flit record: (arrival_cycle, router, in_port, vc, gen,
        #: frame_id, frame_last); credit record: (cycle, router,
        #: out_port, vc).
        self._egress_flits: list[tuple] = []
        self._egress_credits: list[tuple[int, int, int, int]] = []
        #: Per-router end-to-end delay accumulators (per-router-RNG
        #: mode).  When set, delivered-flit delays accumulate per
        #: ejecting router instead of in ``end_to_end_delay``, so the
        #: aggregate can be folded in a fixed router-id order no matter
        #: how routers interleaved chronologically (see
        #: :func:`merge_delay_parts`).
        self._delay_by_router = (
            [StreamingStat() for _ in self.routers] if per_router_stats else None
        )
        # Inter-router credits: (router, out_port) -> per-VC counters at
        # the *upstream* side mirroring the downstream buffer space.
        self._link_credits: dict[tuple[int, int], np.ndarray] = {}
        # (router, out_port) -> (downstream router, downstream in_port)
        self._link_dest: dict[tuple[int, int], tuple[int, int]] = {}
        # (router, in_port) -> (upstream router, upstream out_port)
        self._upstream_of: dict[tuple[int, int], tuple[int, int]] = {}
        for (u, v), port in topology.port_map.items():
            self._link_credits[(u, port)] = np.full(
                config.vcs_per_link, config.vc_buffer_depth, dtype=np.int64
            )
            down_port = topology.port_map[(v, u)]
            self._link_dest[(u, port)] = (v, down_port)
            self._upstream_of[(v, down_port)] = (u, port)
        # In-flight inter-router flits: arrival_cycle -> list of
        # (router, in_port, vc, gen_cycle, frame_id, frame_last).
        self._in_flight: dict[int, list[tuple[int, int, int, int, int, bool]]] = {}
        # In-flight inter-router credit returns.
        self._credit_returns: dict[int, list[tuple[int, int, int]]] = {}
        self._connections: list[NetworkConnection] = []
        # (router, in_port, vc) -> (net_conn, hop_index)
        self._hop_lookup: dict[tuple[int, int, int], tuple[NetworkConnection, int]] = {}
        # (src, dst) -> shortest router path; cleared on any failure so
        # cached paths never route through dead elements.
        self._path_cache: dict[tuple[int, int], list[int]] = {}
        #: End-to-end delay since generation, in cycles.
        self.end_to_end_delay = StreamingStat()
        self.delivered = 0
        #: Per-connection delivered-flit counts (net_conn_id -> flits).
        self.delivered_by_conn: dict[int, int] = {}
        #: Optional fault-event log (see :mod:`repro.faults`).
        self.schedule = schedule
        #: Failed routers / directed links (see :meth:`fail_router`,
        #: :meth:`fail_link`).  Dead elements are skipped by the cycle
        #: loop and excluded from path search.
        self.dead_routers: set[int] = set()
        self.dead_links: set[tuple[int, int]] = set()
        #: Flits destroyed by failures (in dead routers/links, drained at
        #: teardown, or injected into a dropped connection).
        self.lost_flits = 0
        #: Connections successfully rerouted around a failure.
        self.rerouted = 0
        #: Connections dropped because no alternative path admitted them.
        self.dropped_connections = 0
        self._dropped_ids: set[int] = set()
        #: Connections gracefully released (see :meth:`release`).
        self.released_connections = 0
        self._released_ids: set[int] = set()

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------

    def host_ports(self, router: int) -> list[int]:
        """Ports of a router that attach host NICs."""
        degree = self.topology.degree(router)
        return list(range(degree, self.config.num_ports))

    def first_host_port(self, router: int) -> int:
        return self.topology.degree(router)

    # ------------------------------------------------------------------
    # PCS setup
    # ------------------------------------------------------------------

    def shortest_path_cached(self, src_router: int, dst_router: int) -> list[int]:
        """Shortest surviving path, memoised until the next failure."""
        key = (src_router, dst_router)
        path = self._path_cache.get(key)
        if path is None:
            path = self.topology.shortest_path(
                src_router, dst_router, self.dead_routers, self.dead_links
            )
            self._path_cache[key] = path
        return list(path)

    def establish(
        self,
        src_router: int,
        dst_router: int,
        traffic_class: TrafficClass = TrafficClass.CBR,
        avg_slots: int = 1,
        peak_slots: int | None = None,
    ) -> NetworkConnection | None:
        """Set up a connection along the shortest path, or roll back.

        The source injects at the first host port of ``src_router``; the
        flow ejects at the first host port of ``dst_router``.  Returns
        ``None`` (with every partial reservation released) if any hop
        rejects — the PCS probe would backtrack the same way.
        """
        path = self.shortest_path_cached(src_router, dst_router)
        net_conn, _blocked = self.establish_along(
            path, traffic_class, avg_slots, peak_slots
        )
        return net_conn

    def establish_along(
        self,
        path: list[int],
        traffic_class: TrafficClass = TrafficClass.CBR,
        avg_slots: int = 1,
        peak_slots: int | None = None,
        src_port: int | None = None,
        dst_port: int | None = None,
    ) -> tuple[NetworkConnection | None, int]:
        """Set up a connection along an explicit router path, or roll back.

        ``src_port`` / ``dst_port`` pick the host ports at the endpoints
        (default: the first host port of each).  Returns ``(conn, -1)``
        on success, or ``(None, hop_index)`` naming the hop whose
        admission test rejected — the caller can retry over an alternate
        path (blocked-at-hop re-admission).
        """
        net_conn, blocked = self._establish_along(
            path,
            len(self._connections),
            traffic_class,
            avg_slots,
            peak_slots,
            src_port=src_port,
            dst_port=dst_port,
        )
        if net_conn is not None:
            self._connections.append(net_conn)
        return net_conn, blocked

    def _establish_along(
        self,
        path: list[int],
        net_conn_id: int,
        traffic_class: TrafficClass,
        avg_slots: int,
        peak_slots: int | None,
        src_port: int | None = None,
        dst_port: int | None = None,
    ) -> tuple[NetworkConnection | None, int]:
        """Reserve one hop per router along ``path``, or roll back.

        Returns ``(conn, -1)`` or ``(None, index_of_rejecting_hop)``.
        """
        src_router, dst_router = path[0], path[-1]
        if len(path) < 2 and src_router != dst_router:
            raise ValueError("path must traverse at least one link")
        degree = self.topology.degree
        for label, router, port in (
            ("src_port", src_router, src_port),
            ("dst_port", dst_router, dst_port),
        ):
            if port is not None and not (
                degree(router) <= port < self.config.num_ports
            ):
                raise ValueError(
                    f"{label}={port} is not a host port of router {router} "
                    f"(host ports are {degree(router)}.."
                    f"{self.config.num_ports - 1})"
                )
        hops: list[Connection] = []
        in_port = (
            src_port if src_port is not None else self.first_host_port(src_router)
        )
        for idx, router_id in enumerate(path):
            if idx + 1 < len(path):
                out_port = self.topology.port_toward(router_id, path[idx + 1])
            elif dst_port is not None:
                out_port = dst_port
            else:
                out_port = self.first_host_port(router_id)
            result = self.routers[router_id].establish(
                in_port, out_port, traffic_class, avg_slots, peak_slots
            )
            if not result.accepted:
                for back_idx, conn in enumerate(hops):
                    self.routers[path[back_idx]].teardown(conn.conn_id)
                return None, idx
            hops.append(result.connection)
            if idx + 1 < len(path):
                next_router = path[idx + 1]
                in_port = self.topology.port_toward(next_router, router_id)
        net_conn = NetworkConnection(
            net_conn_id=net_conn_id,
            src_router=src_router,
            dst_router=dst_router,
            router_path=tuple(path),
            hops=tuple(hops),
            avg_slots=avg_slots,
            peak_slots=peak_slots if peak_slots is not None else avg_slots,
        )
        for hop_idx, conn in enumerate(hops):
            self._hop_lookup[(path[hop_idx], conn.in_port, conn.vc)] = (
                net_conn,
                hop_idx,
            )
        return net_conn, -1

    @property
    def connections(self) -> list[NetworkConnection]:
        return list(self._connections)

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def inject(
        self,
        net_conn: NetworkConnection,
        gen_cycle: int,
        frame_id: int = -1,
        frame_last: bool = False,
    ) -> None:
        """Deposit one flit at the source NIC of a network connection.

        Looks the connection up by id so callers holding a reference from
        before a reroute still inject into the *current* first-hop VC.
        Flits offered to a dropped connection are counted lost.
        """
        if (
            net_conn.net_conn_id in self._dropped_ids
            or net_conn.net_conn_id in self._released_ids
        ):
            self.lost_flits += 1
            return
        net_conn = self._connections[net_conn.net_conn_id]
        first = net_conn.hops[0]
        self.routers[net_conn.src_router].nics[first.in_port].inject(
            first.vc, gen_cycle, frame_id, frame_last
        )

    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------

    def step(self, now: int, rng: np.random.Generator) -> None:
        """Advance the whole network by one flit cycle."""
        self._deliver_in_flight(now)
        self._deliver_credit_returns(now)
        for router_id, router in enumerate(self.routers):
            if router_id in self.dead_routers:
                continue
            self._step_router(router_id, router, now, rng)

    def step_owned(self, now: int, rngs: "list") -> None:
        """Advance only the owned routers, each on its own arbiter stream.

        The per-router-RNG twin of :meth:`step`: ``rngs`` is indexed by
        router id (entries for non-owned routers are never consulted), so
        the grant sequence of any router is independent of which shard
        steps it — the determinism half of the sharding contract.
        """
        self._deliver_in_flight(now)
        self._deliver_credit_returns(now)
        dead = self.dead_routers
        routers = self.routers
        for router_id in self._owned_order:
            if router_id in dead:
                continue
            self._step_router(router_id, routers[router_id], now, rngs[router_id])

    def _step_router(
        self, router_id: int, router: MMRouter, now: int, rng
    ) -> None:
        """One cycle of one router — the RouterShard stepping core."""
        router.credits.deliver(now)
        if not router.vc_memory._occ_mask:
            # Quiet cycle (every VC empty): link scheduling would yield
            # an empty candidate set and every arbiter returns an empty
            # matching without drawing RNG, so mirror the two counters
            # the full pipeline would still move (the PR 8 step_quiet
            # contract, pinned by the skip twin tests) and skip it.
            router.arbiter.skip_idle_cycles(1)
            router.crossbar.cycles += 1
            router._accept_from_nics(now)
            return
        candidates = self._eligible_candidates(router_id, router, now)
        grants = router.arbiter.match(candidates, rng)
        departures = router.crossbar.transfer(grants, router.vc_memory, now)
        if router.scheme_stateful and departures:
            router.notify_service(departures, now)
        degree = self.topology.degree(router_id)
        for dep in departures:
            if dep.in_port < degree:
                # Flit arrived over an inter-router link: return the
                # credit to the upstream router's output side.
                self._return_link_credit(router_id, dep.in_port, dep.vc, now)
            else:
                # Flit arrived from a host NIC: NIC-side credit.
                router.credits.schedule_return(dep.in_port, dep.vc, now)
            self._route_departure(router_id, dep, now)
        router._accept_from_nics(now)

    def _eligible_candidates(self, router_id: int, router: MMRouter, now: int):
        candidates = router._link_schedule(now)
        filtered = []
        for port_cands in candidates:
            keep = []
            for cand in port_cands:
                key = (router_id, cand.out_port)
                credits = self._link_credits.get(key)
                if credits is None:
                    keep.append(cand)  # host-bound: sink always drains
                    continue
                hop = self._hop_lookup.get((router_id, cand.in_port, cand.vc))
                if hop is None:  # pragma: no cover - defensive
                    continue
                net_conn, hop_idx = hop
                down_vc = net_conn.hops[hop_idx + 1].vc
                if credits[down_vc] > 0:
                    keep.append(cand)
            # Re-level after filtering so the arbiter sees dense levels.
            keep = [
                type(c)(c.in_port, c.vc, c.out_port, c.priority, lvl)
                for lvl, c in enumerate(keep)
            ]
            filtered.append(keep)
        return filtered

    def _route_departure(self, router_id: int, dep, now: int) -> None:
        key = (router_id, dep.out_port)
        dest = self._link_dest.get(key)
        if dest is None:
            # Ejected at a host port: the flit left the network.
            self.delivered += 1
            delay = now - dep.gen_cycle + 1
            if self._delay_by_router is None:
                self.end_to_end_delay.add(delay)
            else:
                self._delay_by_router[router_id].add(delay)
            eject = self._hop_lookup.get((router_id, dep.in_port, dep.vc))
            if eject is not None:
                cid = eject[0].net_conn_id
                self.delivered_by_conn[cid] = self.delivered_by_conn.get(cid, 0) + 1
            return
        hop = self._hop_lookup.get((router_id, dep.in_port, dep.vc))
        down_router, down_port = dest
        if hop is None or down_router in self.dead_routers:
            # The connection was torn down (or its next hop died) while
            # this flit was in the crossbar: it has nowhere to go.
            self.lost_flits += 1
            return
        net_conn, hop_idx = hop
        down_vc = net_conn.hops[hop_idx + 1].vc
        self._link_credits[key][down_vc] -= 1
        if self._link_credits[key][down_vc] < 0:
            raise RuntimeError("inter-router credit underflow")
        # One cycle of link traversal.
        if self._all_owned or down_router in self.owned:
            self._in_flight.setdefault(now + 1, []).append(
                (down_router, down_port, down_vc, dep.gen_cycle, dep.frame_id,
                 dep.frame_last)
            )
        else:
            # Boundary crossing: another shard owns the destination —
            # hold the flit in egress until the next barrier flush.
            self._egress_flits.append(
                (now + 1, down_router, down_port, down_vc, dep.gen_cycle,
                 dep.frame_id, dep.frame_last)
            )

    def _deliver_in_flight(self, now: int) -> None:
        arrivals = self._in_flight.pop(now, None)
        if not arrivals:
            return
        for router, in_port, vc, gen, frame_id, frame_last in arrivals:
            if router in self.dead_routers:
                self.lost_flits += 1
                continue
            self.routers[router].vc_memory.push(
                in_port, vc, gen, frame_id, frame_last, now
            )

    def _deliver_credit_returns(self, now: int) -> None:
        returns = self._credit_returns.pop(now, None)
        if not returns:
            return
        for router, out_port, vc in returns:
            self._link_credits[(router, out_port)][vc] += 1

    def _return_link_credit(self, router: int, in_port: int, vc: int, now: int):
        """Called when a flit leaves a downstream buffer that an upstream
        router holds credits for."""
        u, port = self._upstream_of[(router, in_port)]
        cycle = now + self.config.credit_return_delay
        if self._all_owned or u in self.owned:
            self._credit_returns.setdefault(cycle, []).append((u, port, vc))
        else:
            # The upstream side of this link lives in another shard.
            self._egress_credits.append((cycle, u, port, vc))

    # ------------------------------------------------------------------
    # Fault injection and recovery (see repro.faults)
    # ------------------------------------------------------------------

    def fail_link(self, u: int, v: int, now: int = 0) -> None:
        """Kill the bidirectional link between ``u`` and ``v``.

        Every connection routed over it (in either direction) is torn
        down and rerouted along the shortest surviving path; connections
        no surviving path can admit are dropped.
        """
        if (u, v) not in self.topology.port_map:
            raise ValueError(f"no link {u} <-> {v} in the topology")
        if (u, v) in self.dead_links:
            return
        self.dead_links.add((u, v))
        self.dead_links.add((v, u))
        self._path_cache.clear()
        if self.schedule is not None:
            self.schedule.record(now, FaultKind.DEAD_LINK, f"link={u}<->{v}")
        victims = [
            conn
            for conn in self._connections
            if conn.net_conn_id not in self._dropped_ids
            and self._uses_link(conn, u, v)
        ]
        for conn in victims:
            self._reroute(conn, now)

    def fail_router(self, router_id: int, now: int = 0) -> None:
        """Kill a whole router: it stops stepping, its links go dark.

        Connections traversing it are rerouted; connections sourced or
        sunk at it are unrecoverable and dropped.
        """
        if not (0 <= router_id < self.topology.num_routers):
            raise ValueError(f"router {router_id} out of range")
        if router_id in self.dead_routers:
            return
        self.dead_routers.add(router_id)
        self._path_cache.clear()
        for neighbor in self.topology.neighbors(router_id):
            self.dead_links.add((router_id, neighbor))
            self.dead_links.add((neighbor, router_id))
        if self.schedule is not None:
            self.schedule.record(now, FaultKind.DEAD_ROUTER, f"router={router_id}")
        victims = [
            conn
            for conn in self._connections
            if conn.net_conn_id not in self._dropped_ids
            and router_id in conn.router_path
        ]
        for conn in victims:
            if router_id in (conn.src_router, conn.dst_router):
                self._drop(conn, now, reason="endpoint_dead")
            else:
                self._reroute(conn, now)

    # ------------------------------------------------------------------

    def _uses_link(self, conn: NetworkConnection, u: int, v: int) -> bool:
        path = conn.router_path
        for a, b in zip(path, path[1:]):
            if (a, b) in ((u, v), (v, u)):
                return True
        return False

    def _teardown_hops(self, conn: NetworkConnection) -> list:
        """Release every hop of a connection; returns its NIC backlog.

        Router-buffered and link-in-flight flits are unrecoverable (the
        path is broken) and counted in ``lost_flits``; upstream link
        credits are resynchronised to full for freed VCs on surviving
        links, so those VCs are immediately reusable.
        """
        path = conn.router_path
        depth = self.config.vc_buffer_depth
        src = self.routers[path[0]]
        first = conn.hops[0]
        backlog = src.nics[first.in_port].drain(first.vc)
        for hop_idx, hop in enumerate(conn.hops):
            router_id = path[hop_idx]
            router = self.routers[router_id]
            self._hop_lookup.pop((router_id, hop.in_port, hop.vc), None)
            _, dropped = router.force_teardown(hop.conn_id, restore_credits=False)
            self.lost_flits += dropped
            if hop_idx == 0:
                # Host-side input: the NIC credit state owns this VC.
                router.credits.reset_vc(hop.in_port, hop.vc)
                continue
            # Inter-router input: purge flits still flying on the
            # upstream link, drop pending credit returns, and resync the
            # upstream credit counter to full (the downstream buffer is
            # now empty by construction).
            up_router = path[hop_idx - 1]
            up_key = (up_router, conn.hops[hop_idx - 1].out_port)
            for cycle, arrivals in list(self._in_flight.items()):
                kept = [
                    a
                    for a in arrivals
                    if a[:3] != (router_id, hop.in_port, hop.vc)
                ]
                if len(kept) != len(arrivals):
                    self.lost_flits += len(arrivals) - len(kept)
                    if kept:
                        self._in_flight[cycle] = kept
                    else:
                        del self._in_flight[cycle]
            for cycle, returns in list(self._credit_returns.items()):
                kept = [r for r in returns if r != (*up_key, hop.vc)]
                if len(kept) != len(returns):
                    if kept:
                        self._credit_returns[cycle] = kept
                    else:
                        del self._credit_returns[cycle]
            self._link_credits[up_key][hop.vc] = depth
        return backlog

    def _drop(self, conn: NetworkConnection, now: int, reason: str) -> None:
        backlog = self._teardown_hops(conn)
        self.lost_flits += len(backlog)
        self._dropped_ids.add(conn.net_conn_id)
        self.dropped_connections += 1
        if self.schedule is not None:
            self.schedule.record(
                now,
                FaultKind.CONN_DROPPED,
                f"conn={conn.net_conn_id}",
                f"reason={reason} backlog={len(backlog)}",
            )

    def _reroute(self, conn: NetworkConnection, now: int) -> bool:
        """Move one connection onto the shortest surviving path.

        Keeps the ``net_conn_id`` (the flow's identity survives the
        failure) and migrates the source NIC backlog onto the new first
        hop.  Returns ``False`` — and drops the connection — when no
        surviving path can admit the reservation.
        """
        try:
            path = self.shortest_path_cached(conn.src_router, conn.dst_router)
        except ValueError:
            self._drop(conn, now, reason="no_path")
            return False
        backlog = self._teardown_hops(conn)
        traffic_class = conn.hops[0].traffic_class
        replacement, _blocked = self._establish_along(
            path,
            conn.net_conn_id,
            traffic_class,
            conn.avg_slots,
            conn.peak_slots,
            src_port=conn.hops[0].in_port,
            dst_port=conn.hops[-1].out_port,
        )
        if replacement is None:
            self.lost_flits += len(backlog)
            self._dropped_ids.add(conn.net_conn_id)
            self.dropped_connections += 1
            if self.schedule is not None:
                self.schedule.record(
                    now,
                    FaultKind.CONN_DROPPED,
                    f"conn={conn.net_conn_id}",
                    f"reason=admission backlog={len(backlog)}",
                )
            return False
        self._connections[conn.net_conn_id] = replacement
        first = replacement.hops[0]
        self.routers[replacement.src_router].nics[first.in_port].requeue(
            first.vc, backlog
        )
        self.rerouted += 1
        if self.schedule is not None:
            self.schedule.record(
                now,
                FaultKind.REROUTE,
                f"conn={conn.net_conn_id}",
                f"path={'->'.join(map(str, path))}",
            )
        return True

    # ------------------------------------------------------------------
    # Graceful teardown (fabric session lifecycle)
    # ------------------------------------------------------------------

    def connection_empty(self, conn: NetworkConnection) -> bool:
        """True when no flit of this connection remains anywhere.

        Checks the source NIC queue, every traversed VC buffer, and the
        inter-router in-flight sets — the fabric teardown signal only
        fires once the flow has fully drained.
        """
        if conn.net_conn_id in self._dropped_ids | self._released_ids:
            return True
        conn = self._connections[conn.net_conn_id]
        path = conn.router_path
        first = conn.hops[0]
        if self.routers[path[0]].nics[first.in_port].queue_length(first.vc):
            return False
        for hop_idx, hop in enumerate(conn.hops):
            router = self.routers[path[hop_idx]]
            if router.vc_memory.occupancy_of(hop.in_port, hop.vc):
                return False
        keys = {
            (path[i], hop.in_port, hop.vc) for i, hop in enumerate(conn.hops)
        }
        for arrivals in self._in_flight.values():
            for a in arrivals:
                if a[:3] in keys:
                    return False
        return True

    def release(self, conn: NetworkConnection) -> None:
        """Gracefully tear down a connection along every hop.

        Unlike the fault path this is a planned release (session end):
        the connection id is retired so later injections are refused, but
        it does not count as dropped.  Flits still buffered at release
        time are counted lost, so callers should drain first (see
        :meth:`connection_empty`).
        """
        if conn.net_conn_id in self._dropped_ids | self._released_ids:
            return
        conn = self._connections[conn.net_conn_id]
        backlog = self._teardown_hops(conn)
        self.lost_flits += len(backlog)
        self._released_ids.add(conn.net_conn_id)
        self.released_connections += 1

    # ------------------------------------------------------------------

    def total_buffered(self) -> int:
        """Flits inside all routers, NICs, and links."""
        buffered = sum(r.buffered_flits() + r.nic_backlog() for r in self.routers)
        in_flight = sum(len(v) for v in self._in_flight.values())
        return buffered + in_flight

    def local_buffered(self) -> int:
        """Flits in owned routers/NICs, local links, and pending egress.

        The shard-scoped :meth:`total_buffered`: summed over all shards
        (plus flits the coordinator holds between flush and re-delivery)
        it equals the serial reference's global count.
        """
        routers = self.routers
        buffered = sum(
            routers[rid].buffered_flits() + routers[rid].nic_backlog()
            for rid in self._owned_order
        )
        in_flight = sum(len(v) for v in self._in_flight.values())
        return buffered + in_flight + len(self._egress_flits)

    def delay_summary(self) -> tuple[int, float, float]:
        """``(n, total, max)`` of end-to-end delay, stats-mode independent.

        Per-router mode folds the per-router accumulators in router-id
        order (:func:`merge_delay_parts`); plain mode reads the single
        global accumulator.  ``total / n`` equals ``StreamingStat.mean``
        exactly in plain mode, so existing payload bytes are unchanged.
        """
        if self._delay_by_router is None:
            stat = self.end_to_end_delay
            return stat.n, stat.total, stat.max
        return merge_delay_parts(
            [(s.n, s.total, s.max) for s in self._delay_by_router]
        )

    def router_delay_parts(self) -> list[tuple[int, int, float, float]]:
        """Owned routers' ``(router_id, n, total, max)`` delay parts."""
        if self._delay_by_router is None:
            raise RuntimeError("router_delay_parts needs per_router_stats")
        out = []
        for rid in self._owned_order:
            s = self._delay_by_router[rid]
            out.append((rid, s.n, s.total, s.max))
        return out

    # ------------------------------------------------------------------
    # Shard boundary exchange + event skipping
    # ------------------------------------------------------------------

    def flush_egress(self) -> tuple[list[tuple], list[tuple]]:
        """Take (and clear) the boundary flit/credit egress buffers."""
        flits, credits = self._egress_flits, self._egress_credits
        self._egress_flits = []
        self._egress_credits = []
        return flits, credits

    def apply_boundary_flits(self, flits: "list[tuple]") -> None:
        """Import boundary flits flushed by neighbouring shards.

        The coordinator sorts imports canonically before delivery;
        within one arrival cycle the records commute (each names a
        distinct ``(router, in_port, vc)`` VC queue — crossbar matchings
        grant an output port at most once per cycle), so merge order is
        state-identical to the serial loop's chronological appends.
        """
        in_flight = self._in_flight
        for cycle, router, in_port, vc, gen, frame_id, frame_last in flits:
            in_flight.setdefault(cycle, []).append(
                (router, in_port, vc, gen, frame_id, frame_last)
            )

    def apply_boundary_credits(
        self, credits: "list[tuple[int, int, int, int]]"
    ) -> None:
        """Import boundary credit returns (commutative ``+= 1`` lands)."""
        returns = self._credit_returns
        for cycle, router, out_port, vc in credits:
            returns.setdefault(cycle, []).append((router, out_port, vc))

    def shard_idle(self) -> bool:
        """True when every live owned router is idle (O(owned) bitmasks)."""
        dead = self.dead_routers
        routers = self.routers
        for rid in self._owned_order:
            if rid not in dead and not routers[rid].is_idle():
                return False
        return True

    def next_delivery_cycle(self, default: int) -> int:
        """Earliest pending link-delivery or credit-land cycle."""
        nxt = default
        if self._in_flight:
            c = min(self._in_flight)
            if c < nxt:
                nxt = c
        if self._credit_returns:
            c = min(self._credit_returns)
            if c < nxt:
                nxt = c
        return nxt

    def fast_forward(self, span: int) -> None:
        """Advance owned routers across ``span`` provably idle cycles.

        Callers must have established that no owned router holds a flit
        (:meth:`shard_idle`) and that no delivery lands inside the span
        (:meth:`next_delivery_cycle`): then each skipped cycle would only
        have rotated arbiter fairness state and the crossbar cycle
        counter, both of which advance analytically here.  NIC credit
        lands need nothing — ``CreditState.deliver`` drains every
        land-cycle at or before ``now`` on the next real step.
        """
        if span <= 0:
            return
        dead = self.dead_routers
        routers = self.routers
        for rid in self._owned_order:
            if rid in dead:
                continue
            router = routers[rid]
            router.arbiter.skip_idle_cycles(span)
            router.crossbar.cycles += span

    def run(self, cycles: int, rng: np.random.Generator) -> None:
        for now in range(cycles):
            self.step(now, rng)


class RouterShard:
    """Shared-nothing stepping core over the owned routers of a network.

    Binds a :class:`MultiRouterNetwork` (built with an ``owned`` subset —
    possibly all routers, which is the serial reference) to per-router
    arbiter streams derived from ``(seed, router_id)`` via
    :func:`repro.sim.engine.router_rng`.  Because streams are keyed by
    router id and never by shard layout, and boundary traffic is merged
    in canonical order, a partitioned run reproduces the serial per-router
    run byte for byte.
    """

    def __init__(self, net: MultiRouterNetwork, seed: int) -> None:
        self.net = net
        self.seed = seed
        self.rngs: list = [None] * net.topology.num_routers
        for rid in net._owned_order:
            self.rngs[rid] = router_rng(seed, rid)

    def step(self, now: int) -> None:
        self.net.step_owned(now, self.rngs)

    def idle(self) -> bool:
        return self.net.shard_idle()

    def fast_forward(self, span: int) -> None:
        self.net.fast_forward(span)

    def flush_egress(self) -> tuple[list[tuple], list[tuple]]:
        return self.net.flush_egress()

    def apply_imports(
        self, flits: "list[tuple]", credits: "list[tuple]"
    ) -> None:
        if flits:
            self.net.apply_boundary_flits(flits)
        if credits:
            self.net.apply_boundary_credits(credits)

    def router_fingerprints(self) -> dict[str, str]:
        """Per owned router: SHA-256 of its arbiter-stream state."""
        return {
            str(rid): generator_fingerprint(self.rngs[rid])
            for rid in self.net._owned_order
        }
