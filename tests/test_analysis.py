"""Tests for repro.analysis (stats, saturation detection, rendering)."""

import math

import pytest

from repro.analysis.saturation import knee_by_deficit, knee_by_delay, saturation_gap
from repro.analysis.stats import geometric_mean, mean_ci, relative_gap
from repro.analysis.tables import render_series, render_table, sparkline


class TestStats:
    def test_mean_ci_contains_truth_roughly(self):
        ci = mean_ci([10.0, 12.0, 11.0, 9.0, 13.0])
        assert ci.low < 11.0 < ci.high
        assert ci.n == 5
        assert "±" in str(ci)

    def test_single_sample_infinite_interval(self):
        ci = mean_ci([4.0])
        assert ci.mean == 4.0
        assert ci.half_width == float("inf")

    def test_mean_ci_empty_raises(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_relative_gap(self):
        assert relative_gap(11.0, 10.0) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            relative_gap(1.0, 0.0)


class TestSaturation:
    DELAY = [(10, 2.0), (30, 2.2), (50, 2.5), (70, 3.5), (80, 40.0), (90, 900.0)]

    def test_knee_by_delay_finds_blowup(self):
        assert knee_by_delay(self.DELAY, blowup=10.0) == 80

    def test_knee_by_delay_never(self):
        flat = [(10, 2.0), (50, 2.1), (90, 2.3)]
        assert knee_by_delay(flat) == float("inf")

    def test_knee_by_delay_validation(self):
        with pytest.raises(ValueError):
            knee_by_delay([])
        with pytest.raises(ValueError):
            knee_by_delay(self.DELAY, blowup=1.0)
        with pytest.raises(ValueError):
            knee_by_delay([(50, 1.0), (10, 1.0)])

    def test_knee_by_deficit(self):
        series = [(0.3, 0.30), (0.6, 0.60), (0.8, 0.78), (0.9, 0.80)]
        assert knee_by_deficit(series, tolerance=0.05) == 0.9
        assert knee_by_deficit(series, tolerance=0.2) == float("inf")
        with pytest.raises(ValueError):
            knee_by_deficit(series, tolerance=0.0)

    def test_saturation_gap(self):
        assert saturation_gap(85.0, 70.0) == pytest.approx(15.0)
        assert saturation_gap(float("inf"), 70.0) == float("inf")
        assert saturation_gap(70.0, float("inf")) == float("-inf")
        assert saturation_gap(float("inf"), float("inf")) == 0.0


class TestRendering:
    def test_render_table_aligns_and_formats(self):
        text = render_table(
            ["name", "value"],
            [["alpha", 1.23456], ["b", float("nan")], ["c", float("inf")]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "1.235" in text
        assert lines[4].endswith("-")  # NaN cell renders as a dash
        assert "inf" in text

    def test_render_series(self):
        text = render_series(
            "load%",
            {"coa": [(50, 1.0), (80, 2.0)], "wfa": [(50, 1.5), (80, 9.0)]},
        )
        assert "coa" in text and "wfa" in text
        assert text.count("\n") == 3

    def test_render_series_mismatched_grid_rejected(self):
        with pytest.raises(ValueError):
            render_series("x", {"a": [(1, 1.0)], "b": [(2, 1.0)]})
        with pytest.raises(ValueError):
            render_series("x", {})

    def test_sparkline(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert len(line) == 5
        assert line[0] != line[-1]
        assert sparkline([]) == ""
        assert sparkline([2, 2, 2]) == "▁▁▁"
        log_line = sparkline([1, 10, 100, 1000], log=True)
        assert len(log_line) == 4


class TestKaufmanRoberts:
    def test_single_class_reduces_to_erlang_b(self):
        from repro.analysis.blocking import erlang_b, kaufman_roberts

        for capacity, slots, offered in [(10, 1, 3.0), (64, 4, 10.0),
                                         (100, 7, 30.0), (12, 5, 0.5)]:
            kr = kaufman_roberts(capacity, [(offered, slots)])[0]
            assert kr == pytest.approx(
                erlang_b(offered, capacity // slots), abs=1e-12
            )

    def test_two_class_matches_product_form(self):
        """Brute-force the product-form stationary distribution."""
        from repro.analysis.blocking import kaufman_roberts

        capacity, classes = 20, [(3.0, 2), (1.5, 5)]
        (a1, b1), (a2, b2) = classes
        states = [
            (n1, n2)
            for n1 in range(capacity // b1 + 1)
            for n2 in range(capacity // b2 + 1)
            if n1 * b1 + n2 * b2 <= capacity
        ]
        weight = {
            s: a1 ** s[0] / math.factorial(s[0])
            * a2 ** s[1] / math.factorial(s[1])
            for s in states
        }
        z = sum(weight.values())
        expected = [
            sum(w for s, w in weight.items()
                if s[0] * b1 + s[1] * b2 > capacity - b) / z
            for _, b in classes
        ]
        got = kaufman_roberts(capacity, classes)
        assert got == pytest.approx(expected, abs=1e-10)

    def test_wider_class_blocks_more(self):
        from repro.analysis.blocking import kaufman_roberts

        b_narrow, b_wide = kaufman_roberts(30, [(4.0, 1), (4.0, 6)])
        assert b_wide > b_narrow

    def test_aggregate_is_arrival_weighted(self):
        from repro.analysis.blocking import (
            kaufman_roberts,
            kaufman_roberts_aggregate,
        )

        classes = [(3.0, 2), (1.5, 5)]
        per_class = kaufman_roberts(20, classes)
        agg = kaufman_roberts_aggregate(20, classes)
        assert agg == pytest.approx(
            (3.0 * per_class[0] + 1.5 * per_class[1]) / 4.5
        )
        assert kaufman_roberts_aggregate(20, [(0.0, 1)]) == 0.0

    def test_validation(self):
        from repro.analysis.blocking import kaufman_roberts

        with pytest.raises(ValueError):
            kaufman_roberts(-1, [(1.0, 1)])
        with pytest.raises(ValueError):
            kaufman_roberts(10, [])
        with pytest.raises(ValueError):
            kaufman_roberts(10, [(-1.0, 1)])
        with pytest.raises(ValueError):
            kaufman_roberts(10, [(1.0, 0)])

    def test_zero_capacity_blocks_everything(self):
        from repro.analysis.blocking import kaufman_roberts

        assert kaufman_roberts(0, [(2.0, 1)]) == [1.0]


class TestFairness:
    def test_jain_extremes(self):
        from repro.analysis.fairness import jain_index

        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)
        assert jain_index([0, 0]) == 1.0
        assert math.isnan(jain_index([]))
        with pytest.raises(ValueError):
            jain_index([1, -1])

    def test_normalized_service(self):
        from repro.analysis.fairness import normalized_service

        assert normalized_service([10, 20], [1, 2]) == [10.0, 10.0]
        with pytest.raises(ValueError):
            normalized_service([1], [1, 2])
        with pytest.raises(ValueError):
            normalized_service([1], [0])

    def test_worst_case_gps_lag(self):
        from repro.analysis.fairness import worst_case_gps_lag

        gps = {0: [1.0, 2.0], 1: [1.5]}
        assert worst_case_gps_lag(gps, {0: [1.0, 2.5]}) == pytest.approx(0.5)
        # A packetized scheduler can run ahead of the fluid.
        assert worst_case_gps_lag(gps, {1: [1.0]}) == pytest.approx(-0.5)
        # Truncated runs measure fewer flits than the reference: fine.
        assert worst_case_gps_lag(gps, {0: [1.2]}) == pytest.approx(0.2)
        assert math.isnan(worst_case_gps_lag(gps, {}))
        with pytest.raises(ValueError):
            worst_case_gps_lag(gps, {9: [1.0]})
        with pytest.raises(ValueError):
            worst_case_gps_lag(gps, {1: [1.0, 2.0]})
