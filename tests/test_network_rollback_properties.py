"""Property test: multi-hop admission rollback restores every ledger.

The fabric admits sessions hop-by-hop via
``MultiRouterNetwork.establish_along``; when hop N rejects, the probe
backtracks and every earlier hop's reservation must be released
*exactly* — the reservation vectors (integer slot ledgers) of each
router must be bit-equal to their pre-attempt snapshots.  Hypothesis
drives random background occupancy plus a doomed oversized request to
force rejections at every position along the path.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.network.multirouter import MultiRouterNetwork
from repro.network.topology import ring, torus
from repro.router.config import RouterConfig
from repro.router.connection import TrafficClass


def make_config(**overrides):
    base = dict(num_ports=6, vcs_per_link=8, vc_buffer_depth=2,
                candidate_levels=4, flit_cycles_per_round=800)
    base.update(overrides)
    return RouterConfig(**base)


def snapshot(net):
    return [router.admission.reservation_vectors() for router in net.routers]


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(4, 8),
    background=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(1, 40)),
        max_size=12,
    ),
    path_len=st.integers(2, 5),
    start=st.integers(0, 7),
)
def test_blocked_establish_restores_all_reservation_vectors(
    n, background, path_len, start
):
    """A rejected multi-hop setup leaves every router ledger untouched."""
    config = make_config()
    net = MultiRouterNetwork(ring(n), config)
    for src, dst, slots in background:
        src, dst = src % n, dst % n
        if src == dst:
            continue
        net.establish(src, dst, TrafficClass.CBR, avg_slots=slots)
    path = [(start + i) % n for i in range(min(path_len, n))]
    # Seed one slot on the path so a full-round request cannot fit on
    # top of it anywhere along the path: some hop must reject and roll
    # the earlier hops back.
    seeded, _ = net.establish_along(path, TrafficClass.CBR, avg_slots=1)
    assume(seeded is not None)
    before = snapshot(net)
    conn, blocked = net.establish_along(
        path, TrafficClass.CBR, avg_slots=config.round_cycles
    )
    assert conn is None
    assert 0 <= blocked < len(path)
    assert snapshot(net) == before
    for router in net.routers:
        router.admission.audit(router.table)


@settings(max_examples=15, deadline=None)
@given(
    fill=st.integers(1, 6),
    seed_slots=st.integers(1, 30),
)
def test_failure_at_last_hop_restores_earlier_hops(fill, seed_slots):
    """Force the rejection at the final hop specifically.

    Earlier hops accept (small request), the destination router's host
    port is pre-filled to capacity, so the probe reserves hops 0..N-1
    and must release them when hop N rejects.
    """
    config = make_config()
    topo = torus(2, 3)
    net = MultiRouterNetwork(topo, config)
    path = net.shortest_path_cached(0, 5)
    assert len(path) >= 3
    dst = path[-1]
    host_port = net.first_host_port(dst)
    # Saturate the destination host output port via single-router loops
    # (same in/out router) so only the last hop is full.
    round_cycles = config.round_cycles
    filler = net.routers[dst].establish(
        config.num_ports - 1, host_port, TrafficClass.CBR,
        avg_slots=round_cycles - fill,
    )
    assert filler.accepted
    before = snapshot(net)
    conn, blocked = net.establish_along(
        path, TrafficClass.CBR, avg_slots=fill + seed_slots,
        dst_port=host_port,
    )
    assert conn is None
    assert blocked == len(path) - 1
    assert snapshot(net) == before
    for router in net.routers:
        router.admission.audit(router.table)


def test_successful_establish_then_release_restores_vectors():
    """Round-trip: set up across hops, tear down, ledgers pristine."""
    config = make_config()
    net = MultiRouterNetwork(torus(2, 3), config)
    before = snapshot(net)
    path = net.shortest_path_cached(0, 4)
    conn, blocked = net.establish_along(path, TrafficClass.CBR, avg_slots=5)
    assert conn is not None and blocked == -1
    assert snapshot(net) != before
    net.release(conn)
    assert snapshot(net) == before
    for router in net.routers:
        router.admission.audit(router.table)
