"""Pluggable connection-admission-control (CAC) policies.

The paper's CAC (§2, re-implemented in
:class:`~repro.router.admission.AdmissionController`) is a *feasibility*
test: admit iff every link still fits the reservation.  Real switches
layer operator policy on top — keep utilization headroom, or back off
when the measured QoS is already degrading.  This registry models those
as *pre-admission filters*: a policy may only ever be **stricter** than
the paper CAC, because the base feasibility test (and the free-VC check)
still runs inside ``MMRouter.establish`` on every admission.  That
ordering is what guarantees the reservation invariants can never be
violated regardless of policy (pinned by the property tests).

Policies see a :class:`CacRequest` (the would-be reservation), the live
admission ledgers, and the engine's QoS violation feedback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..router.admission import AdmissionController, AdmissionDecision
from ..router.connection import TrafficClass

__all__ = [
    "CacRequest",
    "CacPolicy",
    "QosFeedback",
    "register_policy",
    "make_policy",
    "policy_names",
]


@dataclass(frozen=True)
class CacRequest:
    """The reservation an arriving session asks for (no VC yet)."""

    in_port: int
    out_port: int
    traffic_class: TrafficClass
    avg_slots: int
    peak_slots: int


class QosFeedback:
    """Sliding window of measured deadline violations.

    The engine notes one entry per departed flit that missed its
    :func:`repro.obs.qos.bounds_for` deadline; measurement-based CAC
    reads the recent count.  Pruning keeps the window bounded.
    """

    def __init__(self) -> None:
        self._violations: list[int] = []
        self.total = 0

    def note(self, cycle: int) -> None:
        self._violations.append(cycle)
        self.total += 1

    def count_since(self, floor_cycle: int) -> int:
        violations = self._violations
        # Prune everything older than the floor; cycles are appended in
        # nondecreasing order, so the prefix is exactly the stale part.
        drop = 0
        while drop < len(violations) and violations[drop] < floor_cycle:
            drop += 1
        if drop:
            del violations[:drop]
        return len(violations)


class CacPolicy:
    """Base policy: the paper CAC alone (always defer to feasibility)."""

    name = "paper"

    def decide(
        self,
        request: CacRequest,
        admission: AdmissionController,
        feedback: QosFeedback,
        now: int,
    ) -> AdmissionDecision:
        return AdmissionDecision(True, "defer to paper CAC")


class UtilizationCapPolicy(CacPolicy):
    """Keep reserved average load under a cap on both links.

    Blocks a reserved-class session whose admission would push either
    link's reserved *average* fraction above ``cap`` — operator headroom
    for best-effort traffic and renegotiation slack.  Best-effort
    sessions reserve nothing and always pass.
    """

    name = "util-cap"

    def __init__(self, cap: float = 0.85) -> None:
        if not (0 < cap <= 1.0):
            raise ValueError("cap must be in (0, 1]")
        self.cap = cap

    def decide(
        self,
        request: CacRequest,
        admission: AdmissionController,
        feedback: QosFeedback,
        now: int,
    ) -> AdmissionDecision:
        if request.traffic_class is TrafficClass.BEST_EFFORT:
            return AdmissionDecision(True, "best-effort reserves nothing")
        round_cycles = admission.config.round_cycles
        add = request.avg_slots / round_cycles
        in_frac = admission.reserved_avg_load(request.in_port) + add
        out_frac = admission.reserved_avg_load_out(request.out_port) + add
        if in_frac > self.cap or out_frac > self.cap:
            return AdmissionDecision(
                False,
                f"utilization cap {self.cap:g}: admission would reserve "
                f"in={in_frac:.3f} out={out_frac:.3f}",
            )
        return AdmissionDecision(True, "under utilization cap")


class MeasurementPolicy(CacPolicy):
    """Back off while measured QoS violations are bursting.

    Blocks reserved-class admissions whenever at least
    ``max_violations`` deadline violations (per ``repro.obs.qos`` bounds)
    landed within the last ``window_cycles`` — the admission ledger says
    there is room, but the measured switch disagrees.
    """

    name = "measurement"

    def __init__(self, window_cycles: int = 2_000, max_violations: int = 8) -> None:
        if window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        if max_violations <= 0:
            raise ValueError("max_violations must be positive")
        self.window_cycles = window_cycles
        self.max_violations = max_violations

    def decide(
        self,
        request: CacRequest,
        admission: AdmissionController,
        feedback: QosFeedback,
        now: int,
    ) -> AdmissionDecision:
        if request.traffic_class is TrafficClass.BEST_EFFORT:
            return AdmissionDecision(True, "best-effort reserves nothing")
        recent = feedback.count_since(now - self.window_cycles)
        if recent >= self.max_violations:
            return AdmissionDecision(
                False,
                f"{recent} deadline violations in the last "
                f"{self.window_cycles} cycles (max {self.max_violations})",
            )
        return AdmissionDecision(True, "QoS measurements healthy")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_POLICIES: dict[str, Callable[..., CacPolicy]] = {}


def register_policy(name: str, factory: Callable[..., CacPolicy]) -> None:
    """Register a CAC policy factory; re-registering replaces."""
    _POLICIES[name] = factory


def make_policy(name: str, **kwargs) -> CacPolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown CAC policy {name!r}; known: {', '.join(sorted(_POLICIES))}"
        ) from None
    return factory(**kwargs)


def policy_names() -> list[str]:
    return sorted(_POLICIES)


register_policy("paper", CacPolicy)
register_policy("util-cap", UtilizationCapPolicy)
register_policy("measurement", MeasurementPolicy)
