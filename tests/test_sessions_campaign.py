"""Sessions x campaign integration: hashing, caching, sweeps, CLI, bench."""

import dataclasses
import json
import math

import pytest

from repro.campaign import CampaignPlan, ResultStore, WorkloadSpec, run_campaign
from repro.campaign.plan import PointSpec
from repro.cli import main
from repro.router import RouterConfig
from repro.sessions import ChurnConfig, SessionsSpec
from repro.sessions.experiments import (
    blocking_sweep_plan,
    reduce_blocking,
    run_blocking_sweep,
)
from repro.sim import RunControl

CFG = RouterConfig(num_ports=4, vcs_per_link=32, candidate_levels=4)

CHURN = ChurnConfig(
    arrivals_per_kcycle=4.0,
    mean_hold_cycles=1_000.0,
    mix=(("cbr-low", 0.6), ("cbr-medium", 0.4)),
)


def sessions_point(policy="paper", rate=4.0, seed=1, cycles=1_500):
    return PointSpec(
        config=CFG, arbiter="coa", scheme="siabp", target_load=0.2,
        seed=seed, workload=WorkloadSpec.cbr(), cycles=cycles,
        warmup_cycles=0,
        sessions=SessionsSpec(
            churn=dataclasses.replace(CHURN, arrivals_per_kcycle=rate),
            policy=policy,
        ),
    )


def artifact_bytes(root):
    return {
        f"{sub}/{p.name}": p.read_bytes()
        for sub in ("objects", "sessions")
        for p in root.glob(f"{sub}/*/*.json")
    }


class TestPointSpecHashing:
    def test_sessions_dimension_changes_key(self):
        static = dataclasses.replace(sessions_point(), sessions=None)
        assert static.key() != sessions_point().key()
        assert sessions_point().key() != sessions_point(policy="util-cap").key()
        assert sessions_point().key() != sessions_point(rate=5.0).key()
        assert sessions_point().key() == sessions_point().key()

    def test_static_point_dict_has_no_sessions_key(self):
        # Pre-sessions artifact hashes must stay reachable.
        static = dataclasses.replace(sessions_point(), sessions=None)
        assert "sessions" not in static.to_dict()

    def test_roundtrip_preserves_sessions(self):
        spec = sessions_point(policy="util-cap")
        again = PointSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert again.key() == spec.key()

    def test_describe_mentions_churn(self):
        assert "erl" in sessions_point().describe()
        static = dataclasses.replace(sessions_point(), sessions=None)
        assert "erl" not in static.describe()


class TestCampaignSessionsChannel:
    def test_outcomes_carry_sessions_payload(self, tmp_path):
        plan = CampaignPlan("s", (sessions_point(),))
        result = run_campaign(plan, store=ResultStore(tmp_path),
                              progress=False)
        payload = result.outcomes[0].sessions
        assert payload is not None
        assert payload["offered"] > 0
        assert payload["event_log"]

    def test_static_point_has_no_sessions_payload(self):
        plan = CampaignPlan(
            "s", (dataclasses.replace(sessions_point(), sessions=None),)
        )
        result = run_campaign(plan, progress=False)
        assert result.outcomes[0].sessions is None

    def test_cache_hit_restores_sessions_payload(self, tmp_path):
        store = ResultStore(tmp_path)
        plan = CampaignPlan("s", (sessions_point(),))
        first = run_campaign(plan, store=store, progress=False)
        second = run_campaign(plan, store=store, progress=False)
        assert second.hits == 1
        assert second.outcomes[0].sessions == first.outcomes[0].sessions
        assert (second.outcomes[0].result.to_dict()
                == first.outcomes[0].result.to_dict())

    def test_missing_sessions_artifact_forces_recompute(self, tmp_path):
        store = ResultStore(tmp_path)
        plan = CampaignPlan("s", (sessions_point(),))
        first = run_campaign(plan, store=store, progress=False)
        key = plan.points[0].key()
        store.sessions_path_for(key).unlink()
        second = run_campaign(plan, store=store, progress=False)
        assert second.hits == 0
        assert second.outcomes[0].sessions == first.outcomes[0].sessions

    def test_parallel_and_serial_artifacts_byte_identical(self, tmp_path):
        plan = CampaignPlan(
            "s",
            (sessions_point(seed=1), sessions_point(seed=2),
             sessions_point(policy="util-cap", rate=8.0)),
        )
        serial_store, pool_store = tmp_path / "a", tmp_path / "b"
        serial = run_campaign(plan, jobs=1, store=ResultStore(serial_store),
                              progress=False)
        pooled = run_campaign(plan, jobs=2, store=ResultStore(pool_store),
                              progress=False)
        assert artifact_bytes(serial_store) == artifact_bytes(pool_store)
        for a, b in zip(serial.outcomes, pooled.outcomes):
            assert a.sessions == b.sessions


class TestBlockingSweep:
    def test_sweep_produces_reference_checked_points(self, tmp_path):
        plan = blocking_sweep_plan(
            "sweep", CFG, [6.0, 12.0], ["paper", "util-cap"],
            control=RunControl(cycles=2_000, warmup_cycles=0),
        )
        result, points = run_blocking_sweep(
            plan, store=ResultStore(tmp_path)
        )
        assert len(points) == 4
        for point in points:
            assert point.policy in ("paper", "util-cap")
            assert point.offered_sessions > 0
            assert 0.0 <= point.blocking_probability <= 1.0
            # Single-CBR-class demo mix: the Erlang-B reference exists,
            # and Kaufman-Roberts must agree with it (it reduces to
            # Erlang-B when there is only one class).
            assert math.isfinite(point.erlang_b_reference)
            assert point.kaufman_roberts_reference == pytest.approx(
                point.erlang_b_reference, abs=1e-12
            )

    def test_multi_class_mix_has_no_erlang_reference(self):
        plan = blocking_sweep_plan(
            "sweep", CFG, [4.0], ["paper"], base_churn=CHURN,
            control=RunControl(cycles=1_500, warmup_cycles=0),
        )
        _, points = run_blocking_sweep(plan)
        # Two CBR classes: Erlang-B no longer applies, but the
        # Kaufman-Roberts recursion handles the heterogeneous slot
        # demands and still yields an analytic reference.
        assert math.isnan(points[0].erlang_b_reference)
        assert math.isfinite(points[0].kaufman_roberts_reference)
        assert 0.0 <= points[0].kaufman_roberts_reference <= 1.0

    def test_vbr_mix_has_no_analytic_reference(self):
        churn = dataclasses.replace(
            CHURN, mix=(("cbr-low", 0.5), ("vbr", 0.5))
        )
        plan = blocking_sweep_plan(
            "sweep", CFG, [4.0], ["paper"], base_churn=churn,
            control=RunControl(cycles=1_500, warmup_cycles=0),
        )
        _, points = run_blocking_sweep(plan)
        # VBR sessions have no fixed slot demand, so neither loss
        # model applies.
        assert math.isnan(points[0].erlang_b_reference)
        assert math.isnan(points[0].kaufman_roberts_reference)

    def test_reduce_rejects_static_outcomes(self):
        plan = CampaignPlan(
            "s", (dataclasses.replace(sessions_point(), sessions=None),)
        )
        result = run_campaign(plan, progress=False)
        with pytest.raises(ValueError):
            reduce_blocking(result)

    def test_plan_validates_inputs(self):
        with pytest.raises(ValueError):
            blocking_sweep_plan("x", CFG, [], ["paper"])
        with pytest.raises(ValueError):
            blocking_sweep_plan("x", CFG, [4.0], [])


class TestSessionsBench:
    def test_bench_report_gates_and_serializes(self, tmp_path):
        from repro.sessions.bench import (
            check_sessions_overhead,
            run_sessions_bench,
            write_sessions_report,
        )

        report = run_sessions_bench(
            ports=4, vcs=32, levels=4, cycles=1_200, repeats=2
        )
        assert report.disabled_identical
        assert report.replay_identical
        assert report.sessions_offered > 0
        path = write_sessions_report(report, tmp_path / "bench.json")
        data = json.loads(path.read_text())
        assert data["replay_identical"] is True
        ok, message = check_sessions_overhead(report, max_disabled=1.0)
        assert ok, message

    def test_gate_fails_on_replay_divergence(self):
        from repro.sessions.bench import (
            check_sessions_overhead,
            run_sessions_bench,
        )

        report = run_sessions_bench(
            ports=4, vcs=32, levels=4, cycles=600, repeats=1
        )
        report.replay_identical = False
        ok, message = check_sessions_overhead(report, max_disabled=1.0)
        assert not ok and "replay" in message


class TestSessionsCli:
    ARGS = ["--ports", "4", "--vcs", "32", "--cycles", "1500",
            "--rate", "4.0", "--hold", "800"]

    def test_default_run_prints_summary(self, capsys):
        assert main(["sessions", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "session churn run" in out
        assert "offered sessions" in out
        assert "session events" in out

    def test_check_determinism_passes(self, capsys):
        assert main(["sessions", *self.ARGS, "--check-determinism"]) == 0
        assert "deterministic" in capsys.readouterr().out

    def test_demo_renders_blocking_table(self, tmp_path, capsys):
        args = ["sessions", "--ports", "4", "--vcs", "32",
                "--cycles", "1500", "--demo",
                "--rates", "4,8,12", "--policies", "paper,util-cap",
                "--store", str(tmp_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "session blocking vs offered load" in out
        assert "erlang-B ref" in out
        # Second invocation is served from the store.
        assert main(args) == 0
        assert "(6 cached / 6 points)" in capsys.readouterr().out

    def test_demo_rejects_thin_grids(self, capsys):
        assert main(["sessions", "--demo", "--rates", "4,8",
                     "--policies", "paper,util-cap"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bench_writes_report(self, tmp_path, capsys):
        path = tmp_path / "BENCH_sessions.json"
        # Tiny run: loosen the noise-dominated timing gate; the
        # identity/replay gates are what this test pins.
        assert main(["sessions", "--ports", "4", "--vcs", "32",
                     "--bench", "--cycles", "800", "--repeats", "1",
                     "--max-disabled-overhead", "0.5",
                     "--json", str(path)]) == 0
        assert json.loads(path.read_text())["disabled_identical"] is True
        assert "sessions overhead OK" in capsys.readouterr().out
