"""Blocking-vs-delivered-QoS frontier under churn and injected faults.

The robustness figure class: sweep the offered session load across CAC
policies — the paper's static reservation check, the measurement-based
policy, and the closed-loop ``adaptive`` policy — while transient faults
corrupt flits and drop credits underneath.  Every point runs through
:func:`repro.campaign.run_campaign` (content-addressed caching, optional
worker pool) on the fault-injecting harness, with the control plane
enabled so the same estimators, retries and recovery machinery are live
for every policy; only ``adaptive`` feeds the hysteresis band back into
admission.

The reduction collapses seeds per (policy, arrival-rate) cell into one
:class:`FrontierPoint`: blocking split by cause (CAC vs signaling
timeout), the smoothed deadline-violation rate actually delivered, and
the signaling/recovery effort it took.

Imported lazily by ``repro.control`` users (pulls in ``repro.campaign``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Sequence

from ..campaign.executor import CampaignResult, run_campaign
from ..campaign.plan import CampaignPlan, PointSpec, WorkloadSpec
from ..campaign.store import ResultStore
from ..faults.models import FaultConfig
from ..router.config import RouterConfig
from ..sessions.churn import ChurnConfig
from ..sessions.signaling import SessionsSpec, SignalingConfig
from ..sim.engine import RunControl
from .config import ControlConfig, RetryPolicy

__all__ = [
    "FRONTIER_POLICIES",
    "FRONTIER_CHURN",
    "FRONTIER_FAULTS",
    "FRONTIER_CONTROL",
    "FrontierPoint",
    "frontier_plan",
    "reduce_frontier",
    "run_frontier",
]

#: The policy axis: the paper's static check, measurement-based CAC, and
#: the closed-loop pressure-driven policy from :mod:`repro.control.plane`.
FRONTIER_POLICIES = ("paper", "measurement", "adaptive")

#: Churn base for frontier demos: a CBR-heavy mix with VBR and
#: best-effort riders, so degradation shedding has something to shed.
FRONTIER_CHURN = ChurnConfig(
    arrivals_per_kcycle=2.0,
    mean_hold_cycles=3_000.0,
    mix=(
        ("cbr-low", 0.4),
        ("cbr-medium", 0.3),
        ("vbr", 0.2),
        ("best-effort", 0.1),
    ),
)

#: Transient-only fault environment: flit corruption and credit loss at
#: rates that keep recovery busy without killing a port outright.
FRONTIER_FAULTS = FaultConfig(corruption_rate=0.01, credit_loss_rate=0.002)

#: Control plane shared by every frontier point: lossy signaling so the
#: retry machinery is exercised, default estimator gains and water marks.
FRONTIER_CONTROL = ControlConfig(retry=RetryPolicy(loss_rate=0.02))


def frontier_plan(
    name: str,
    config: RouterConfig,
    arrival_rates: Sequence[float],
    policies: Sequence[str] = FRONTIER_POLICIES,
    seeds: Sequence[int] = (0, 1),
    *,
    base_churn: ChurnConfig = FRONTIER_CHURN,
    signaling: SignalingConfig = SignalingConfig(),
    control_cfg: ControlConfig = FRONTIER_CONTROL,
    faults: FaultConfig | None = FRONTIER_FAULTS,
    control: RunControl = RunControl(cycles=12_000, warmup_cycles=0),
    background_load: float = 0.1,
    arbiter: str = "coa",
    scheme: str = "siabp",
) -> CampaignPlan:
    """Policy × arrival-rate × seed grid on the faulty harness."""
    if not arrival_rates or not policies or not seeds:
        raise ValueError("need at least one arrival rate, policy and seed")
    points = tuple(
        PointSpec(
            config=config,
            arbiter=arbiter,
            scheme=scheme,
            target_load=background_load,
            seed=seed,
            workload=WorkloadSpec.cbr(),
            cycles=control.cycles,
            warmup_cycles=control.warmup_cycles,
            sessions=SessionsSpec(
                churn=dataclasses.replace(
                    base_churn, arrivals_per_kcycle=float(rate)
                ),
                policy=policy,
                signaling=signaling,
                control=control_cfg,
            ),
            faults=faults,
        )
        for policy in policies
        for rate in arrival_rates
        for seed in seeds
    )
    return CampaignPlan(name=name, points=points)


@dataclass(frozen=True)
class FrontierPoint:
    """One (policy, arrival-rate) cell of the frontier, seeds pooled."""

    policy: str
    arrivals_per_kcycle: float
    seeds: int
    #: Mean offered erlangs per run across seeds.
    offered_erlangs: float
    offered: int
    admitted: int
    blocked_cac: int
    blocked_timeout: int
    dropped: int
    #: Pooled blocking probability (all causes), NaN when nothing offered.
    blocking_probability: float
    #: Mean EWMA deadline-violation rate (violations per kilocycle).
    violation_rate_per_kcycle: float
    setup_retries: int
    readmitted_alt: int
    #: Worst QoS-degradation level any seed reached.
    degradation_level: int

    def to_dict(self) -> dict[str, Any]:
        out = dataclasses.asdict(self)
        p = self.blocking_probability
        out["blocking_probability"] = None if p != p else p
        return out


def reduce_frontier(result: CampaignResult) -> list[FrontierPoint]:
    """One :class:`FrontierPoint` per (policy, arrival-rate) cell."""
    cells: dict[tuple[str, float], list] = {}
    order: list[tuple[str, float]] = []
    for outcome in result.outcomes:
        spec = outcome.spec.sessions
        if outcome.sessions is None or outcome.control is None or spec is None:
            raise ValueError(
                f"outcome {outcome.spec.describe()} is missing the session "
                "or control payload a frontier reduction needs"
            )
        cell = (spec.policy, spec.churn.arrivals_per_kcycle)
        if cell not in cells:
            cells[cell] = []
            order.append(cell)
        cells[cell].append(outcome)
    points = []
    for policy, rate in order:
        outcomes = cells[(policy, rate)]
        sess = [o.sessions for o in outcomes]
        ctrl = [o.control for o in outcomes]
        offered = sum(int(s["offered"]) for s in sess)
        blocked = sum(int(s["blocked"]) for s in sess)
        points.append(
            FrontierPoint(
                policy=policy,
                arrivals_per_kcycle=rate,
                seeds=len(outcomes),
                offered_erlangs=(
                    sum(float(s["offered_erlangs"]) for s in sess) / len(sess)
                ),
                offered=offered,
                admitted=sum(int(s["admitted"]) for s in sess),
                blocked_cac=sum(int(s["blocked_cac"]) for s in sess),
                blocked_timeout=sum(int(s["blocked_timeout"]) for s in sess),
                dropped=sum(int(s["dropped"]) for s in sess),
                blocking_probability=(
                    blocked / offered if offered else float("nan")
                ),
                violation_rate_per_kcycle=(
                    sum(float(c["violation_rate_per_kcycle"]) for c in ctrl)
                    / len(ctrl)
                ),
                setup_retries=sum(
                    int(c["signaling"]["setup_retries"]) for c in ctrl
                ),
                readmitted_alt=sum(
                    int(c["signaling"]["readmitted_alt"]) for c in ctrl
                ),
                degradation_level=max(
                    o.result.degradation_level for o in outcomes
                ),
            )
        )
    return points


def run_frontier(
    plan: CampaignPlan,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress=None,
) -> tuple[CampaignResult, list[FrontierPoint]]:
    """Execute a frontier campaign and reduce it to plot-ready points."""
    result = run_campaign(plan, jobs=jobs, store=store, progress=progress)
    return result, reduce_frontier(result)
