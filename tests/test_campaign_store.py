"""Content-addressed result store and manifests (repro.campaign.store)."""

import json

from repro.campaign import ResultStore, RunManifest, WorkloadSpec
from repro.campaign.plan import PointSpec
from repro.router import RouterConfig


def make_spec(seed: int = 1) -> PointSpec:
    return PointSpec(
        config=RouterConfig(num_ports=4, vcs_per_link=32, candidate_levels=4),
        arbiter="coa",
        scheme="siabp",
        target_load=0.5,
        seed=seed,
        workload=WorkloadSpec.cbr(),
        cycles=1_000,
        warmup_cycles=200,
    )


RESULT = {"throughput": 0.5, "flit_delay_us": {"overall": 2.5}}


class TestResultStore:
    def test_miss_on_empty_store(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(make_spec().key()) is None
        assert store.corrupt_dropped == 0

    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        key = spec.key()
        path = store.put(spec, key, RESULT)
        assert path.exists()
        assert key in store
        assert store.get(key) == RESULT

    def test_artifact_is_deterministic_bytes(self, tmp_path):
        spec = make_spec()
        key = spec.key()
        p1 = ResultStore(tmp_path / "a").put(spec, key, RESULT)
        p2 = ResultStore(tmp_path / "b").put(spec, key, RESULT)
        assert p1.read_bytes() == p2.read_bytes()

    def test_sharded_layout(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        key = spec.key()
        path = store.put(spec, key, RESULT)
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.json"

    def test_corrupted_artifact_is_dropped_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        key = spec.key()
        store.put(spec, key, RESULT)
        store.path_for(key).write_text("{ not json", encoding="utf-8")
        assert store.get(key) is None
        assert store.corrupt_dropped == 1

    def test_truncated_artifact_is_dropped(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        key = spec.key()
        path = store.put(spec, key, RESULT)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert store.get(key) is None
        assert store.corrupt_dropped == 1

    def test_key_mismatch_is_dropped(self, tmp_path):
        store = ResultStore(tmp_path)
        a, b = make_spec(seed=1), make_spec(seed=2)
        store.put(a, a.key(), RESULT)
        # Simulate a mis-filed artifact: b's path holding a's payload.
        b_path = store.path_for(b.key())
        b_path.parent.mkdir(parents=True, exist_ok=True)
        b_path.write_bytes(store.path_for(a.key()).read_bytes())
        assert store.get(b.key()) is None
        assert store.corrupt_dropped == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        store.put(spec, spec.key(), RESULT)
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []


class TestRunManifest:
    def test_accounting_and_schema(self, tmp_path):
        store = ResultStore(tmp_path)
        manifest = RunManifest(campaign="unit", jobs=2)
        spec = make_spec()
        manifest.record_point(spec, spec.key(), cached=False, attempts=1,
                              wall_s=0.25)
        manifest.record_point(spec, spec.key(), cached=True, attempts=0,
                              wall_s=0.0)
        manifest.finish()
        path = store.write_manifest(manifest)
        data = json.loads(path.read_text())
        assert data["campaign"] == "unit"
        assert data["totals"]["points"] == 2
        assert data["totals"]["hits"] == 1
        assert data["totals"]["misses"] == 1
        assert data["totals"]["wall_s"] >= 0
        prov = data["provenance"]
        for field in ("repro_version", "code_version", "host", "python"):
            assert field in prov

    def test_manifest_names_do_not_collide(self, tmp_path):
        store = ResultStore(tmp_path)
        paths = set()
        for _ in range(3):
            manifest = RunManifest(campaign="same-name", jobs=1)
            manifest.finish()
            paths.add(store.write_manifest(manifest))
        assert len(paths) == 3
