"""Tests for repro.obs.timeseries, repro.obs.flight, and JSONL validation."""

import csv
import io
import json

import numpy as np
import pytest

from repro.obs.flight import FlightRecorder
from repro.obs.timeseries import TIMESERIES_FIELDS, TimeSeriesRecorder
from repro.obs.export import validate_timeseries_jsonl
from repro.router import MMRouter, RouterConfig, TrafficClass
from repro.router.crossbar import Departure


def make_router():
    cfg = RouterConfig(num_ports=2, vcs_per_link=4, candidate_levels=2,
                       flit_cycles_per_round=400)
    return MMRouter(cfg)


def run_sampled(recorder, cycles=400, inject_every=2):
    """Drive a tiny router, sampling on the recorder's stride."""
    router = make_router()
    conn = router.establish(0, 1, TrafficClass.CBR, 10).connection
    rng = np.random.default_rng(0)
    for now in range(cycles):
        if now % inject_every == 0:
            router.nics[0].inject(conn.vc, gen_cycle=now)
        router.step(now, rng)
        if recorder.due(now):
            recorder.sample(now, router)
    return router


class TestTimeSeriesRecorder:
    def test_rows_follow_stride(self):
        rec = TimeSeriesRecorder(stride=50, capacity=64)
        run_sampled(rec, cycles=400)
        rows = rec.rows()
        assert [r["cycle"] for r in rows] == list(range(0, 400, 50))
        assert rec.samples_taken == len(rows) == len(rec)
        assert rec.dropped == 0

    def test_row_contents(self):
        rec = TimeSeriesRecorder(stride=64, capacity=64)
        router = run_sampled(rec, cycles=256)
        last = rec.rows()[-1]
        assert set(last) == set(TIMESERIES_FIELDS)
        assert 0.0 <= last["utilization"] <= 1.0
        assert 0.0 <= last["utilization_cum"] <= 1.0
        assert last["nic_backlog"] == [
            nic.backlog() for p, nic in enumerate(router.nics)
        ] or len(last["nic_backlog"]) == router.config.num_ports
        # A steadily-fed router shows nonzero utilization after warmup.
        assert any(r["utilization"] > 0 for r in rec.rows())

    def test_ring_wraps_keeping_most_recent(self):
        rec = TimeSeriesRecorder(stride=10, capacity=8)
        run_sampled(rec, cycles=400)
        rows = rec.rows()
        assert len(rows) == 8
        assert rec.samples_taken == 40
        assert rec.dropped == 40 - 8
        # Oldest-first ordering of the most recent 8 samples.
        assert [r["cycle"] for r in rows] == list(range(320, 400, 10))

    def test_jsonl_round_trips_and_validates(self):
        rec = TimeSeriesRecorder(stride=32, capacity=64)
        run_sampled(rec, cycles=256)
        text = rec.to_jsonl()
        assert validate_timeseries_jsonl(text) == []
        parsed = [json.loads(line) for line in text.splitlines()]
        assert parsed == rec.rows()

    def test_csv_flattens_backlog(self):
        rec = TimeSeriesRecorder(stride=64, capacity=16)
        run_sampled(rec, cycles=256)
        reader = csv.reader(io.StringIO(rec.to_csv()))
        header = next(reader)
        assert header == [
            "cycle", "utilization", "utilization_cum", "buffered_flits",
            "nic_backlog_0", "nic_backlog_1", "credits_in_flight",
        ]
        body = list(reader)
        assert len(body) == len(rec)
        assert all(len(row) == len(header) for row in body)

    def test_payload_summary(self):
        rec = TimeSeriesRecorder(stride=16, capacity=4)
        run_sampled(rec, cycles=128)
        payload = rec.to_payload()
        assert payload["stride"] == 16
        assert payload["samples_taken"] == 8
        assert payload["samples_kept"] == 4
        assert payload["dropped"] == 4
        assert len(payload["rows"]) == 4

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(stride=0)
        with pytest.raises(ValueError):
            TimeSeriesRecorder(capacity=0)

    def test_empty_exports(self):
        rec = TimeSeriesRecorder()
        assert rec.to_jsonl() == ""
        assert rec.rows() == []
        assert rec.to_csv().splitlines()[0].startswith("cycle,")


class TestValidator:
    def good_line(self, cycle=0):
        return json.dumps({
            "cycle": cycle, "utilization": 0.5, "utilization_cum": 0.4,
            "buffered_flits": 3, "nic_backlog": [0, 1],
            "credits_in_flight": 2,
        })

    def test_accepts_good_stream(self):
        text = "\n".join(self.good_line(c) for c in (0, 64, 128)) + "\n"
        assert validate_timeseries_jsonl(text) == []

    def test_rejects_bad_json(self):
        assert validate_timeseries_jsonl("{not json\n")

    def test_rejects_non_object(self):
        assert validate_timeseries_jsonl("[1,2]\n")

    def test_rejects_field_mismatch(self):
        row = json.loads(self.good_line())
        del row["utilization"]
        row["extra"] = 1
        errors = validate_timeseries_jsonl(json.dumps(row) + "\n")
        assert any("fields mismatch" in e for e in errors)

    def test_rejects_negative_and_bool_counters(self):
        row = json.loads(self.good_line())
        row["buffered_flits"] = -1
        assert validate_timeseries_jsonl(json.dumps(row) + "\n")
        row = json.loads(self.good_line())
        row["cycle"] = True
        assert validate_timeseries_jsonl(json.dumps(row) + "\n")

    def test_rejects_utilization_out_of_range(self):
        row = json.loads(self.good_line())
        row["utilization"] = 1.5
        errors = validate_timeseries_jsonl(json.dumps(row) + "\n")
        assert any("out of [0,1]" in e for e in errors)

    def test_rejects_bad_backlog(self):
        row = json.loads(self.good_line())
        row["nic_backlog"] = [0, -2]
        assert validate_timeseries_jsonl(json.dumps(row) + "\n")

    def test_rejects_non_increasing_cycles(self):
        text = self.good_line(64) + "\n" + self.good_line(64) + "\n"
        errors = validate_timeseries_jsonl(text)
        assert any("not increasing" in e for e in errors)

    def test_rejects_blank_lines(self):
        text = self.good_line(0) + "\n\n" + self.good_line(64) + "\n"
        assert any("blank" in e for e in validate_timeseries_jsonl(text))


def make_departure(now, in_port=0, vc=0, frame_id=-1, frame_last=False):
    return Departure(in_port=in_port, vc=vc, out_port=1, gen_cycle=now - 1,
                     arrival_cycle=now - 1, frame_id=frame_id,
                     frame_last=frame_last)


class TestFlightRecorder:
    def test_ring_keeps_active_cycles_only(self):
        rec = FlightRecorder(capacity=4)
        for now in range(20):
            deps = [make_departure(now)] if now % 2 == 0 else []
            rec.on_cycle(now, deps)
        assert len(rec) == 4
        events = rec.render_events()
        # Only the most recent active cycles survive.
        assert "[      18]" in events and "[      10]" not in events

    def test_trigger_snapshots_events_and_state(self):
        router = make_router()
        conn = router.establish(0, 1, TrafficClass.CBR, 10).connection
        rng = np.random.default_rng(0)
        rec = FlightRecorder(capacity=16)
        for now in range(6):
            if now < 2:
                router.nics[0].inject(conn.vc, gen_cycle=now)
            rec.on_cycle(now, router.step(now, rng))
        dump = rec.trigger(router, 6, "qos_burst", "detail text")
        assert dump.reason == "qos_burst"
        assert dump.cycle == 6
        assert "depart in=0" in dump.events
        assert "router state at cycle 6" in dump.router_state
        rendered = dump.render()
        assert "flight dump: qos_burst at cycle 6" in rendered
        assert "detail text" in rendered
        assert rec.dumps == [dump]

    def test_trigger_with_empty_ring(self):
        router = make_router()
        dump = FlightRecorder().trigger(router, 0, "watchdog:livelock")
        assert "(none recorded)" in dump.render()

    def test_payload_shape(self):
        router = make_router()
        rec = FlightRecorder(capacity=8)
        rec.on_cycle(3, [make_departure(3, frame_id=2, frame_last=True)])
        rec.trigger(router, 4, "watchdog:conservation")
        payload = rec.to_payload()
        assert payload["capacity"] == 8
        assert payload["active_cycles_retained"] == 1
        assert len(payload["dumps"]) == 1
        assert payload["dumps"][0]["reason"] == "watchdog:conservation"
        assert "frame=2 last" in payload["dumps"][0]["events"]
        json.dumps(payload, allow_nan=False)  # strictly serializable

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
