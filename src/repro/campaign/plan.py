"""Declarative campaign plans: point specs and stable content hashing.

A *campaign* is a grid of independent simulation points — the
(config, arbiter, scheme, load, seed, workload) tuples behind every
figure in the paper.  This module turns that grid into plain data:

* :class:`WorkloadSpec` — a named, parameterized workload recipe that a
  worker process can rebuild from scratch (unlike the ad-hoc builder
  closures the sweep API historically took, which cannot be hashed or
  shipped to another process).
* :class:`PointSpec` — one fully-resolved simulation point.  Its
  :meth:`PointSpec.key` is a stable SHA-256 over the canonical JSON of
  the spec plus the code-version key, and is what the result store
  addresses artifacts by.
* :class:`CampaignPlan` — an ordered tuple of points with grid helpers.

Hashing contract: two points collide iff they would produce the same
:class:`~repro.sim.simulation.SimResult`.  Anything that can change a
result must be in the spec (it is: the config dataclass, arbiter,
scheme, seed, load, run length, warmup, and every workload parameter)
or in :data:`CODE_VERSION`, which must be bumped whenever simulation
semantics change so stale cached artifacts become unreachable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from .. import __version__
from ..faults.models import FaultConfig
from ..router.config import RouterConfig
from ..router.router import MMRouter
from ..sessions.signaling import SessionsSpec
from ..sim.engine import RunControl
from ..traffic.mixes import Workload, build_cbr_workload, build_vbr_workload

if TYPE_CHECKING:  # import cycle: repro.fabric imports repro.network,
    # whose experiments module imports this package lazily.
    from ..fabric.spec import FabricSpec
    from ..shard.spec import ShardSpec

__all__ = [
    "CODE_VERSION",
    "WorkloadSpec",
    "PointSpec",
    "CampaignPlan",
    "canonical_json",
    "register_workload_kind",
]

#: Simulation-semantics version key baked into every point hash.  Bump
#: whenever a change alters what any spec computes (new RNG consumption
#: order, metric definition change, ...): old artifacts then miss
#: instead of serving stale results.
#:
#: History: 2 — p99 percentiles moved from the seed-dependent reservoir
#: to the deterministic log-bucket histogram, and non-finite aggregate
#: values now serialize as ``null`` (PR 4).
CODE_VERSION = 2


def canonical_json(obj: Any) -> str:
    """Deterministic *strict* JSON: sorted keys, no whitespace.

    ``allow_nan=False`` so an artifact can never contain ``NaN`` or
    ``Infinity`` (not JSON; breaks strict parsers downstream) — callers
    must normalize non-finite values to ``None`` first, which
    :meth:`repro.sim.simulation.SimResult.to_dict` does.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


# ----------------------------------------------------------------------
# Workload specs
# ----------------------------------------------------------------------

#: kind -> builder(router, load, rng, **params) registry.  Extensible so
#: downstream code can register new declarative workload kinds.
_WORKLOAD_KINDS: dict[str, Callable[..., Workload]] = {}


def register_workload_kind(kind: str, builder: Callable[..., Workload]) -> None:
    """Register a workload kind usable in :class:`WorkloadSpec`.

    ``builder`` is called as ``builder(router, load, rng, **params)``.
    Registering under an existing name replaces the previous builder.
    """
    _WORKLOAD_KINDS[kind] = builder


register_workload_kind(
    "cbr", lambda router, load, rng: build_cbr_workload(router, load, rng)
)
register_workload_kind(
    "vbr",
    lambda router, load, rng, **params: build_vbr_workload(
        router, load, rng, **params
    ),
)


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative workload recipe: a registered kind plus parameters.

    Unlike a builder closure, a spec is hashable, JSON-serializable, and
    rebuildable inside a worker process.  It is itself a
    ``WorkloadBuilder`` — calling it with ``(router, rng, load)`` builds
    the workload — so every API that accepts a builder accepts a spec.
    """

    kind: str
    #: Sorted (name, value) pairs; tuple so the dataclass stays hashable.
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; "
                f"known: {', '.join(sorted(_WORKLOAD_KINDS))}"
            )
        ordered = tuple(sorted(self.params))
        if ordered != self.params:
            object.__setattr__(self, "params", ordered)

    @staticmethod
    def cbr() -> "WorkloadSpec":
        """The paper's CBR mix (Fig. 5 traffic)."""
        return WorkloadSpec("cbr")

    @staticmethod
    def vbr(
        model: str = "SR",
        frame_time_cycles: int = 1_500,
        bandwidth_scale: float = 8.0,
        num_gops: int = 2,
    ) -> "WorkloadSpec":
        """The paper's MPEG-2 VBR mix under the SR or BB model."""
        return WorkloadSpec(
            "vbr",
            (
                ("bandwidth_scale", bandwidth_scale),
                ("frame_time_cycles", frame_time_cycles),
                ("model", model),
                ("num_gops", num_gops),
            ),
        )

    @property
    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def __call__(
        self, router: MMRouter, rng: np.random.Generator, load: float
    ) -> Workload:
        return _WORKLOAD_KINDS[self.kind](router, load, rng, **self.params_dict)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": self.params_dict}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        return cls(data["kind"], tuple(sorted(data.get("params", {}).items())))


# ----------------------------------------------------------------------
# Point specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PointSpec:
    """One fully-resolved simulation point of a campaign grid."""

    config: RouterConfig
    arbiter: str
    scheme: str
    target_load: float
    seed: int
    workload: WorkloadSpec
    cycles: int
    warmup_cycles: int
    #: Optional dynamic-session dimension (churn + CAC policy +
    #: signaling).  ``None`` keeps the point static — and keeps its hash
    #: identical to pre-sessions artifacts, so existing caches stay warm.
    sessions: SessionsSpec | None = None
    #: Optional fault-injection dimension.  ``None`` runs the healthy
    #: simulator — and, like ``sessions``, stays out of the hash.
    faults: FaultConfig | None = None
    #: Optional multi-router fabric dimension (topology + churn + path
    #: policy).  When set the point runs a :class:`~repro.fabric.engine.
    #: FabricSim` instead of the single-router simulator; ``None`` stays
    #: out of the hash so every existing cache key stays warm.
    fabric: "FabricSpec | None" = None
    #: Optional sharded-execution dimension.  Pure *execution* choice:
    #: it rides the manifest (``to_dict``) for provenance but is popped
    #: from :meth:`key`, because sharded and serial runs of the same
    #: point are byte-identical — so their cache entries cross-serve.
    shard: "ShardSpec | None" = None

    def __post_init__(self) -> None:
        if self.shard is not None and self.fabric is None:
            raise ValueError("shard execution requires a fabric point")
        if self.shard is not None and self.fabric.rng_mode != "per-router":
            raise ValueError(
                "shard execution requires fabric rng_mode='per-router'"
            )

    @property
    def control(self) -> RunControl:
        return RunControl(cycles=self.cycles, warmup_cycles=self.warmup_cycles)

    def to_dict(self) -> dict[str, Any]:
        out = {
            "config": asdict(self.config),
            "arbiter": self.arbiter,
            "scheme": self.scheme,
            "target_load": self.target_load,
            "seed": self.seed,
            "workload": self.workload.to_dict(),
            "cycles": self.cycles,
            "warmup_cycles": self.warmup_cycles,
        }
        if self.sessions is not None:
            out["sessions"] = self.sessions.to_dict()
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        if self.fabric is not None:
            out["fabric"] = self.fabric.to_dict()
        if self.shard is not None:
            out["shard"] = self.shard.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PointSpec":
        sessions = data.get("sessions")
        faults = data.get("faults")
        fabric = data.get("fabric")
        if fabric is not None:
            # Deferred: repro.fabric imports repro.network, whose
            # experiments module lazily imports this package.
            from ..fabric.spec import FabricSpec

            fabric = FabricSpec.from_dict(fabric)
        shard = data.get("shard")
        if shard is not None:
            from ..shard.spec import ShardSpec

            shard = ShardSpec.from_dict(shard)
        return cls(
            config=RouterConfig(**data["config"]),
            arbiter=data["arbiter"],
            scheme=data["scheme"],
            target_load=data["target_load"],
            seed=data["seed"],
            workload=WorkloadSpec.from_dict(data["workload"]),
            cycles=data["cycles"],
            warmup_cycles=data["warmup_cycles"],
            sessions=(
                SessionsSpec.from_dict(sessions) if sessions is not None else None
            ),
            faults=(
                FaultConfig.from_dict(faults) if faults is not None else None
            ),
            fabric=fabric,
            shard=shard,
        )

    def hashed_dict(self) -> dict[str, Any]:
        """The spec dict with execution-only fields (``shard``) removed.

        This is what :meth:`key` hashes and what the result store
        persists: the sharded run of a point is byte-identical to its
        serial run, so both must resolve to — and cross-serve — one
        content-addressed artifact with identical bytes.
        """
        out = self.to_dict()
        out.pop("shard", None)
        return out

    def key(self) -> str:
        """Stable content address: SHA-256 of spec + code version."""
        payload = {
            "spec": self.hashed_dict(),
            "code_version": CODE_VERSION,
            "repro_version": __version__,
        }
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()

    def describe(self) -> str:
        """Short human-readable label for logs and manifests."""
        base = (
            f"{self.workload.kind}/{self.arbiter}/{self.scheme} "
            f"load={self.target_load:g} seed={self.seed}"
        )
        if self.sessions is not None:
            base += (
                f" churn={self.sessions.churn.offered_erlangs_per_port:g}erl"
                f"/{self.sessions.policy}"
            )
        if self.faults is not None:
            base += " faults"
        if self.fabric is not None:
            base += (
                f" fabric={self.fabric.topology.describe()}"
                f"/{self.fabric.path_policy}"
            )
        if self.shard is not None:
            base += f" shard={self.shard.describe()}"
        return base


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignPlan:
    """An ordered set of points.  Order is the serial execution order;
    parallel execution must produce identical artifacts regardless."""

    name: str
    points: tuple[PointSpec, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a campaign plan needs at least one point")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @staticmethod
    def grid(
        name: str,
        config: RouterConfig,
        arbiters: Sequence[str],
        loads: Sequence[float],
        seeds: Sequence[int],
        workload: WorkloadSpec,
        control: RunControl,
        scheme: str = "siabp",
        sessions: SessionsSpec | None = None,
        faults: FaultConfig | None = None,
    ) -> "CampaignPlan":
        """Full arbiter x load x seed grid, in sweep order.

        Matches the fairness rule of :func:`repro.sim.sweep.run_load_sweep`:
        arbiters at the same (load, seed) share identical workloads
        because workload construction draws from its own RNG stream.
        """
        points = tuple(
            PointSpec(
                config=config,
                arbiter=arbiter,
                scheme=scheme,
                target_load=load,
                seed=seed,
                workload=workload,
                cycles=control.cycles,
                warmup_cycles=control.warmup_cycles,
                sessions=sessions,
                faults=faults,
            )
            for arbiter in arbiters
            for load in loads
            for seed in seeds
        )
        return CampaignPlan(name=name, points=points)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "points": [p.to_dict() for p in self.points]}
