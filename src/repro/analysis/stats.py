"""Statistical helpers for experiment post-processing.

Small, dependency-light routines the benches and examples share:
confidence intervals over replicated runs, geometric means for speedup
summaries, and simple series utilities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "MeanCI",
    "mean_ci",
    "geometric_mean",
    "relative_gap",
    "wilson_interval",
]

#: Two-sided t critical values at 95% for small samples (df 1..30);
#: falls back to the normal 1.96 beyond.  Hard-coded to avoid a scipy
#: dependency in the core analysis path.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


@dataclass(frozen=True)
class MeanCI:
    """Sample mean with a 95% confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.n})"


def mean_ci(samples: Sequence[float]) -> MeanCI:
    """95% t-interval over independent replications."""
    arr = np.asarray(list(samples), dtype=np.float64)
    n = arr.size
    if n == 0:
        raise ValueError("need at least one sample")
    if n == 1:
        return MeanCI(float(arr[0]), float("inf"), 1)
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1)) / math.sqrt(n)
    t = _T95[n - 2] if n - 2 < len(_T95) else 1.96
    return MeanCI(mean, t * sem, n)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (for ratios/speedups); values must be positive."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one value")
    if (arr <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    The right interval for blocking probabilities: unlike the normal
    approximation it stays inside [0, 1] and behaves at p near 0 (the
    common case for a well-provisioned admission controller) and for the
    small trial counts short simulations produce.  Returns ``(low, high)``
    at ~95% for the default ``z``; ``(0.0, 1.0)`` with no trials.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError("need 0 <= successes <= trials")
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(
        p * (1.0 - p) / trials + z2 / (4.0 * trials * trials)
    )
    return (max(0.0, center - half), min(1.0, center + half))


def relative_gap(a: float, b: float) -> float:
    """(a - b) / b — how much ``a`` exceeds ``b``, signed."""
    if b == 0:
        raise ValueError("reference value must be nonzero")
    return (a - b) / b
