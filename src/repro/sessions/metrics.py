"""Session-level accounting: events, blocking, carried load, utilization.

Two artifacts come out of a churn run:

* the **event log** — one record per lifecycle transition (arrival,
  admission, block, renegotiation, release), in deterministic order.
  ``lines()`` renders it byte-stably; two runs of the same seed must
  produce identical lines (the determinism acceptance test and the CI
  ``sessions-smoke`` job compare exactly this).
* the **session statistics** — per-class offered/admitted/blocked
  counts with Wilson-interval blocking probabilities, offered vs carried
  session load in erlangs, and a reservation-utilization time series
  sampled off the admission ledgers.

Both serialize to strict JSON (``to_payload``) so the campaign store can
persist them next to result artifacts, mirroring the telemetry channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..analysis.stats import wilson_interval
from .churn import ChurnConfig, SessionSpec

__all__ = ["SessionEvent", "SessionEventLog", "SessionStats"]

#: Stable payload schema tag.
SESSIONS_SCHEMA = "repro-sessions-v1"


@dataclass(frozen=True)
class SessionEvent:
    """One lifecycle transition of one session."""

    cycle: int
    kind: str
    sid: int
    detail: str = ""

    def line(self) -> str:
        base = f"{self.cycle} {self.kind} sid={self.sid}"
        return f"{base} {self.detail}" if self.detail else base


class SessionEventLog:
    """Append-only, deterministic lifecycle log."""

    def __init__(self) -> None:
        self.events: list[SessionEvent] = []

    def record(self, cycle: int, kind: str, sid: int, detail: str = "") -> None:
        self.events.append(SessionEvent(cycle, kind, sid, detail))

    def lines(self) -> list[str]:
        return [event.line() for event in self.events]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class _ClassCounters:
    offered: int = 0
    admitted: int = 0
    #: Rejected by the CAC policy or the admission test.
    blocked: int = 0
    #: Gave up after exhausting signaling retries (control plane only).
    blocked_timeout: int = 0
    released: int = 0
    #: Admitted sessions whose connection a fault destroyed mid-hold.
    dropped: int = 0
    #: Sum of admitted sessions' holding times (carried erlang-cycles).
    carried_hold_cycles: int = 0
    #: Sum of all arrivals' holding times (offered erlang-cycles).
    offered_hold_cycles: int = 0

    def to_dict(self) -> dict[str, Any]:
        low, high = wilson_interval(
            self.blocked + self.blocked_timeout, self.offered
        )
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "blocked": self.blocked,
            "blocked_timeout": self.blocked_timeout,
            "released": self.released,
            "dropped": self.dropped,
            "carried_hold_cycles": self.carried_hold_cycles,
            "offered_hold_cycles": self.offered_hold_cycles,
            # Wilson is defined even for zero-attempt classes: (0, 1).
            "blocking_wilson_95": [low, high],
        }


@dataclass
class SessionStats:
    """Aggregated churn-run outcome (strict-JSON serializable)."""

    policy: str
    churn: ChurnConfig
    cycles: int
    by_class: dict[str, _ClassCounters] = field(default_factory=dict)
    reneg_ok: int = 0
    reneg_rejected: int = 0
    #: Sessions still active (or draining) when the run ended.
    expired_active: int = 0
    # Signaling robustness counters (all zero without a control plane).
    setup_timeouts: int = 0
    setup_retries: int = 0
    reneg_timeouts: int = 0
    reneg_retries: int = 0
    reneg_giveups: int = 0
    #: Sessions admitted on an alternate output port after give-up.
    readmitted_alt: int = 0
    #: (cycle, mean reserved input-link fraction, mean reserved
    #: output-link fraction) samples.
    utilization_series: list[tuple[int, float, float]] = field(
        default_factory=list
    )

    # ------------------------------------------------------------------

    def _cls(self, name: str) -> _ClassCounters:
        if name not in self.by_class:
            self.by_class[name] = _ClassCounters()
        return self.by_class[name]

    def note_offered(self, spec: SessionSpec) -> None:
        c = self._cls(spec.cls_name)
        c.offered += 1
        c.offered_hold_cycles += spec.hold_cycles

    def note_admitted(self, spec: SessionSpec) -> None:
        c = self._cls(spec.cls_name)
        c.admitted += 1
        c.carried_hold_cycles += spec.hold_cycles

    def note_blocked(self, spec: SessionSpec) -> None:
        self._cls(spec.cls_name).blocked += 1

    def note_blocked_timeout(self, spec: SessionSpec) -> None:
        self._cls(spec.cls_name).blocked_timeout += 1

    def note_dropped(self, spec: SessionSpec) -> None:
        self._cls(spec.cls_name).dropped += 1

    def note_released(self, spec: SessionSpec) -> None:
        self._cls(spec.cls_name).released += 1

    def sample_utilization(self, cycle: int, in_frac: float, out_frac: float) -> None:
        self.utilization_series.append((cycle, in_frac, out_frac))

    # ------------------------------------------------------------------

    @property
    def offered(self) -> int:
        return sum(c.offered for c in self.by_class.values())

    @property
    def admitted(self) -> int:
        return sum(c.admitted for c in self.by_class.values())

    @property
    def blocked(self) -> int:
        """Total blocked sessions, both CAC-rejected and timed out."""
        return sum(
            c.blocked + c.blocked_timeout for c in self.by_class.values()
        )

    @property
    def blocked_cac(self) -> int:
        return sum(c.blocked for c in self.by_class.values())

    @property
    def blocked_timeout(self) -> int:
        return sum(c.blocked_timeout for c in self.by_class.values())

    @property
    def dropped(self) -> int:
        return sum(c.dropped for c in self.by_class.values())

    def blocking_probability(self, cls_name: str | None = None) -> float:
        offered, blocked = self._ob(cls_name)
        return blocked / offered if offered else float("nan")

    def blocking_wilson(
        self, cls_name: str | None = None
    ) -> tuple[float, float]:
        offered, blocked = self._ob(cls_name)
        return wilson_interval(blocked, offered)

    def _ob(self, cls_name: str | None) -> tuple[int, int]:
        if cls_name is None:
            return self.offered, self.blocked
        c = self.by_class.get(cls_name)
        return (c.offered, c.blocked + c.blocked_timeout) if c else (0, 0)

    @property
    def offered_erlangs(self) -> float:
        """Measured offered session load (erlang), all ports combined."""
        total = sum(c.offered_hold_cycles for c in self.by_class.values())
        return total / self.cycles if self.cycles else float("nan")

    @property
    def carried_erlangs(self) -> float:
        """Measured carried session load (erlang), all ports combined."""
        total = sum(c.carried_hold_cycles for c in self.by_class.values())
        return total / self.cycles if self.cycles else float("nan")

    # ------------------------------------------------------------------

    def to_payload(self, event_log: SessionEventLog) -> dict[str, Any]:
        """Strict-JSON payload for the campaign sessions channel."""
        low, high = self.blocking_wilson()
        p = self.blocking_probability()
        return {
            "schema": SESSIONS_SCHEMA,
            "policy": self.policy,
            "churn": self.churn.to_dict(),
            "cycles": self.cycles,
            "offered": self.offered,
            "admitted": self.admitted,
            "blocked": self.blocked,
            "blocked_cac": self.blocked_cac,
            "blocked_timeout": self.blocked_timeout,
            "dropped": self.dropped,
            "blocking_probability": None if p != p else p,
            "blocking_wilson_95": [low, high],
            "offered_erlangs": self.offered_erlangs,
            "carried_erlangs": self.carried_erlangs,
            "reneg_ok": self.reneg_ok,
            "reneg_rejected": self.reneg_rejected,
            "expired_active": self.expired_active,
            "signaling": {
                "setup_timeouts": self.setup_timeouts,
                "setup_retries": self.setup_retries,
                "reneg_timeouts": self.reneg_timeouts,
                "reneg_retries": self.reneg_retries,
                "reneg_giveups": self.reneg_giveups,
                "readmitted_alt": self.readmitted_alt,
            },
            "by_class": {
                name: c.to_dict() for name, c in sorted(self.by_class.items())
            },
            "utilization_series": [
                [cycle, in_frac, out_frac]
                for cycle, in_frac, out_frac in self.utilization_series
            ],
            "event_counts": event_log.counts(),
            "event_log": event_log.lines(),
        }
