"""Tests for repro.router.credits (credit-based flow control)."""

import numpy as np
import pytest

from repro.router.config import RouterConfig
from repro.router.credits import CreditState


def make_credits(ports=2, vcs=4, depth=3, delay=1) -> CreditState:
    cfg = RouterConfig(
        num_ports=ports,
        vcs_per_link=vcs,
        vc_buffer_depth=depth,
        credit_return_delay=delay,
        candidate_levels=1,
    )
    return CreditState(cfg)


class TestBasics:
    def test_initial_credits_equal_depth(self):
        state = make_credits(depth=3)
        assert (state.counters == 3).all()
        assert state.in_flight == 0

    def test_consume_decrements(self):
        state = make_credits()
        state.consume(0, 1)
        assert state.available(0, 1) == 2
        assert state.available(0, 0) == 3

    def test_underflow_raises(self):
        state = make_credits(depth=1)
        state.consume(0, 0)
        with pytest.raises(RuntimeError):
            state.consume(0, 0)

    def test_counters_view_readonly(self):
        state = make_credits()
        with pytest.raises(ValueError):
            state.counters[0, 0] = 9


class TestReturnPath:
    def test_credit_lands_after_delay(self):
        state = make_credits(delay=2)
        state.consume(1, 2)
        state.schedule_return(1, 2, now=10)
        assert state.in_flight == 1
        state.deliver(11)
        assert state.available(1, 2) == 2  # not yet
        state.deliver(12)
        assert state.available(1, 2) == 3
        assert state.in_flight == 0

    def test_zero_delay_lands_same_cycle(self):
        state = make_credits(delay=0)
        state.consume(0, 0)
        state.schedule_return(0, 0, now=5)
        state.deliver(5)
        assert state.available(0, 0) == 3

    def test_overflow_detected(self):
        state = make_credits(delay=0)
        # Returning a credit that was never consumed overflows the pool.
        state.schedule_return(0, 0, now=1)
        with pytest.raises(RuntimeError):
            state.deliver(1)

    def test_deliver_with_nothing_pending_is_noop(self):
        state = make_credits()
        state.deliver(123)  # must not raise
        assert state.in_flight == 0


class TestMask:
    def test_mask_initially_full(self):
        state = make_credits(vcs=4)
        assert state.mask_for(0) == 0b1111

    def test_mask_clears_at_zero_and_returns(self):
        state = make_credits(vcs=4, depth=1, delay=0)
        state.consume(0, 2)
        assert state.mask_for(0) == 0b1011
        state.schedule_return(0, 2, now=3)
        state.deliver(3)
        assert state.mask_for(0) == 0b1111

    def test_mask_matches_counters_under_random_ops(self):
        rng = np.random.default_rng(7)
        state = make_credits(ports=2, vcs=6, depth=2, delay=1)
        outstanding: list[tuple[int, int]] = []
        for now in range(300):
            state.deliver(now)
            p, v = int(rng.integers(2)), int(rng.integers(6))
            if state.available(p, v) > 0 and rng.random() < 0.6:
                state.consume(p, v)
                outstanding.append((p, v))
            elif outstanding and rng.random() < 0.8:
                i = int(rng.integers(len(outstanding)))
                op, ov = outstanding.pop(i)
                state.schedule_return(op, ov, now)
            for port in range(2):
                mask = state.mask_for(port)
                for vc in range(6):
                    assert bool(mask & (1 << vc)) == (state.available(port, vc) > 0)


class TestConservation:
    def test_total_is_invariant(self):
        """credits + in-flight == total slots when no flits are buffered."""
        rng = np.random.default_rng(3)
        state = make_credits(ports=2, vcs=4, depth=3, delay=2)
        total = 2 * 4 * 3
        buffered: list[tuple[int, int]] = []
        for now in range(500):
            state.deliver(now)
            p, v = int(rng.integers(2)), int(rng.integers(4))
            if state.available(p, v) > 0 and rng.random() < 0.5:
                state.consume(p, v)
                buffered.append((p, v))
            elif buffered:
                bp, bv = buffered.pop(0)
                state.schedule_return(bp, bv, now)
            held = int(state.counters.sum())
            assert held + state.in_flight + len(buffered) == total
