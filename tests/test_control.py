"""Closed-loop control plane (repro.control): estimators, retries, recovery.

Covers the PR's acceptance gates directly:

* estimator semantics — EWMA stride-independence and the anti-flap
  hysteresis band (trip fast, recover only after a continuous hold);
* deterministic signaling — same-seed control-enabled runs replay
  identical retry/backoff/give-up event logs; give-ups land in the
  timeout-blocked class, not the CAC-blocked class;
* self-recovering degradation — a transient fault burst escalates, the
  recovery controller un-sheds after pressure clears, and consecutive
  transitions never come closer than the hysteresis hold;
* fault cranking — signaling through a dead port retries, gives up, and
  re-admits on an alternate port;
* bit-identity — a zero-churn control-disabled engine does not perturb
  the fault harness (same SimResult dict AND RNG fingerprint).
"""

import dataclasses

import pytest

from repro.control import (
    AdaptiveCacPolicy,
    ControlConfig,
    ControlPlane,
    Ewma,
    HysteresisBand,
    RecoveryController,
    RetryPolicy,
    ViolationRateEstimator,
)
from repro.faults.degradation import (
    LEVEL_NORMAL,
    LEVEL_SHED_BEST_EFFORT,
    DegradationPolicy,
)
from repro.faults.harness import FaultySingleRouterSim
from repro.faults.models import FaultConfig
from repro.faults.schedule import FaultSchedule
from repro.router import RouterConfig
from repro.router.admission import AdmissionController
from repro.router.connection import TrafficClass
from repro.sessions import ChurnConfig, SessionEngine, SessionsSpec, make_policy
from repro.sessions.policies import CacRequest, QosFeedback
from repro.sim import RunControl
from repro.sim.simulation import SingleRouterSim
from repro.traffic.mixes import build_cbr_workload

CFG = RouterConfig(num_ports=4, vcs_per_link=64, candidate_levels=4)

CHURN = ChurnConfig(
    arrivals_per_kcycle=3.0,
    mean_hold_cycles=1_200.0,
    mix=(("cbr-low", 0.4), ("cbr-medium", 0.25), ("vbr", 0.2),
         ("best-effort", 0.15)),
)


def control_run(cycles=4_000, seed=7, control=None, load=0.1, churn=CHURN,
                policy="paper", faults=None):
    """One churn run, healthy or faulty; returns (result, engine, fp)."""
    if faults is not None:
        sim = FaultySingleRouterSim(CFG, arbiter="coa", scheme="siabp",
                                    seed=seed, faults=faults)
    else:
        sim = SingleRouterSim(CFG, arbiter="coa", scheme="siabp", seed=seed)
    workload = build_cbr_workload(sim.router, load, sim.rng.workload)
    spec = SessionsSpec(churn=churn, policy=policy, control=control)
    engine = SessionEngine.from_spec(CFG, spec, cycles, sim.rng.sessions)
    result = sim.run(
        workload, RunControl(cycles=cycles, warmup_cycles=0), sessions=engine
    )
    return result, engine, sim.rng.state_fingerprint()


# ----------------------------------------------------------------------
# Estimators
# ----------------------------------------------------------------------


class TestEwma:
    def test_converges_toward_constant_input(self):
        e = Ewma(0.5)
        for _ in range(20):
            e.update(10.0)
        assert e.value == pytest.approx(10.0, abs=1e-4)
        assert e.samples == 20

    def test_alpha_one_tracks_input_exactly(self):
        e = Ewma(1.0)
        assert e.update(3.0) == 3.0
        assert e.update(-1.5) == -1.5

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            Ewma(0.0)
        with pytest.raises(ValueError):
            Ewma(1.5)


class TestViolationRateEstimator:
    def test_sample_is_stride_independent(self):
        # 4 violations per 64 cycles and 8 per 128 are the same rate.
        a = ViolationRateEstimator(1.0, 64)
        for _ in range(4):
            a.note()
        b = ViolationRateEstimator(1.0, 128)
        for _ in range(8):
            b.note()
        assert a.step() == b.step() == pytest.approx(62.5)

    def test_step_resets_pending(self):
        est = ViolationRateEstimator(1.0, 100)
        est.note()
        est.step()
        assert est.step() == 0.0

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            ViolationRateEstimator(0.5, 0)


class TestHysteresisBand:
    def test_trips_instantly_at_high_water(self):
        band = HysteresisBand(1.0, 4.0, hold_cycles=100)
        assert band.observe(0, 3.9) == "normal"
        assert band.observe(10, 4.0) == "high"
        assert band.transitions == [(10, "high")]

    def test_recovers_only_after_continuous_hold(self):
        band = HysteresisBand(1.0, 4.0, hold_cycles=100)
        band.observe(0, 5.0)
        assert band.observe(10, 0.5) == "high"    # clock starts
        assert band.observe(60, 0.5) == "high"    # 50 < hold
        assert band.observe(110, 0.5) == "normal"  # 100 >= hold
        assert band.transitions == [(0, "high"), (110, "normal")]

    def test_dead_zone_resets_recovery_clock(self):
        band = HysteresisBand(1.0, 4.0, hold_cycles=100)
        band.observe(0, 5.0)
        band.observe(10, 0.5)
        band.observe(60, 2.0)   # dead zone: clock resets, state holds
        assert band.cleared_for(60) == 0
        assert band.observe(120, 0.5) == "high"   # fresh clock from 120
        assert band.observe(219, 0.5) == "high"
        assert band.observe(220, 0.5) == "normal"

    def test_cleared_for_tracks_below_low_time(self):
        band = HysteresisBand(1.0, 4.0, hold_cycles=100)
        band.observe(0, 0.1)
        assert band.cleared_for(70) == 70
        band.observe(80, 9.0)
        assert band.cleared_for(81) == 0


# ----------------------------------------------------------------------
# Adaptive CAC policy
# ----------------------------------------------------------------------


def _request(avg_slots, tclass=TrafficClass.CBR):
    return CacRequest(in_port=0, out_port=1, traffic_class=tclass,
                      avg_slots=avg_slots, peak_slots=avg_slots)


class TestAdaptiveCacPolicy:
    def test_registered_by_name(self):
        policy = make_policy("adaptive")
        assert isinstance(policy, AdaptiveCacPolicy)

    def test_passes_without_a_band(self):
        policy = AdaptiveCacPolicy()
        ac = AdmissionController(CFG)
        decision = policy.decide(_request(CFG.round_cycles), ac,
                                 QosFeedback(), now=0)
        assert decision.admitted

    def test_best_effort_always_passes(self):
        policy = AdaptiveCacPolicy(brake_cap=0.01)
        ac = AdmissionController(CFG)
        feedback = QosFeedback()
        feedback.band = HysteresisBand(1.0, 4.0, 100)
        feedback.band.observe(0, 99.0)
        decision = policy.decide(
            _request(0, TrafficClass.BEST_EFFORT), ac, feedback, now=0
        )
        assert decision.admitted

    def test_brakes_above_cap_while_band_is_high(self):
        policy = AdaptiveCacPolicy(brake_cap=0.5)
        ac = AdmissionController(CFG)
        feedback = QosFeedback()
        feedback.band = HysteresisBand(1.0, 4.0, 100)
        feedback.band.observe(0, 99.0)
        small = policy.decide(_request(CFG.round_cycles // 4), ac,
                              feedback, now=0)
        assert small.admitted
        big = policy.decide(_request(CFG.round_cycles), ac, feedback, now=0)
        assert not big.admitted
        assert "brake" in big.reason

    def test_releases_brake_once_band_recovers(self):
        policy = AdaptiveCacPolicy(brake_cap=0.5)
        ac = AdmissionController(CFG)
        feedback = QosFeedback()
        feedback.band = HysteresisBand(1.0, 4.0, 100)
        feedback.band.observe(0, 99.0)
        assert not policy.decide(_request(CFG.round_cycles), ac,
                                 feedback, now=0).admitted
        feedback.band.observe(10, 0.0)
        feedback.band.observe(110, 0.0)
        assert feedback.band.state == "normal"
        assert policy.decide(_request(CFG.round_cycles), ac,
                             feedback, now=120).admitted

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            AdaptiveCacPolicy(brake_cap=0.0)


# ----------------------------------------------------------------------
# Closed-loop degradation recovery
# ----------------------------------------------------------------------


class TestRecoveryController:
    def make_policy(self, hold=100, window=256):
        cfg = FaultConfig(window=window, shed_be_faults=4,
                          clamp_vbr_faults=16, restore_after=10**9)
        policy = DegradationPolicy(cfg, FaultSchedule())
        band = HysteresisBand(1.0, 4.0, hold_cycles=hold)
        policy.controller = RecoveryController(band, hold)
        return policy, band

    def test_burst_escalates_then_recovers_after_pressure_clears(self):
        policy, band = self.make_policy()
        for now in range(4):
            policy.note_fault(now)
        band.observe(0, 9.0)
        assert policy.update(4) == LEVEL_SHED_BEST_EFFORT
        # Faults age out of the window but the band is still high:
        # legacy restore_after would never fire anyway; the controller
        # refuses while pressure persists.
        assert policy.update(500) == LEVEL_SHED_BEST_EFFORT
        # Pressure clears: below low-water continuously for one hold.
        band.observe(510, 0.0)
        assert policy.update(550) == LEVEL_SHED_BEST_EFFORT  # hold not met
        band.observe(620, 0.0)
        assert policy.update(620) == LEVEL_NORMAL
        assert policy.max_level == LEVEL_SHED_BEST_EFFORT

    def test_band_high_imposes_shed_floor_without_faults(self):
        policy, band = self.make_policy()
        band.observe(0, 9.0)
        assert policy.update(1) == LEVEL_SHED_BEST_EFFORT
        assert policy.escalations == 1

    def test_transitions_spaced_at_least_one_hold(self):
        policy, band = self.make_policy(hold=100)
        for now in range(16):
            policy.note_fault(now)
        policy.update(16)
        assert policy.level == 2
        band.observe(300, 0.0)  # clear immediately; faults age out
        levels = []
        for now in range(300, 1200, 10):
            levels.append((now, policy.update(now)))
        downs = [now for (now, lvl), (_, prev) in
                 zip(levels[1:], levels[:-1]) if lvl < prev]
        assert len(downs) == 2  # 2 -> 1 -> 0, one step at a time
        assert downs[1] - downs[0] >= 100

    def test_legacy_quiet_period_rule_when_no_controller(self):
        cfg = FaultConfig(window=64, shed_be_faults=2, clamp_vbr_faults=16,
                          restore_after=50)
        policy = DegradationPolicy(cfg, FaultSchedule())
        policy.note_fault(0)
        policy.note_fault(1)
        assert policy.update(2) == LEVEL_SHED_BEST_EFFORT
        assert policy.update(40) == LEVEL_SHED_BEST_EFFORT  # quiet 38 < 50
        assert policy.update(100) == LEVEL_NORMAL  # quiet 98 >= 50


# ----------------------------------------------------------------------
# Deterministic signaling retries
# ----------------------------------------------------------------------

LOSSY = ControlConfig(retry=RetryPolicy(timeout_cycles=16, max_retries=3,
                                        loss_rate=0.25))


class TestSignalingRetries:
    def test_same_seed_replays_identical_retry_logs(self):
        a_result, a_engine, a_fp = control_run(control=LOSSY)
        b_result, b_engine, b_fp = control_run(control=LOSSY)
        assert a_engine.event_log.lines() == b_engine.event_log.lines()
        assert a_engine.to_payload() == b_engine.to_payload()
        assert a_engine.control_payload() == b_engine.control_payload()
        assert a_result.to_dict() == b_result.to_dict()
        assert a_fp == b_fp

    def test_lossy_signaling_retries_and_recovers(self):
        _, engine, _ = control_run(control=LOSSY)
        counts = engine.event_log.counts()
        assert counts.get("setup-timeout", 0) > 0
        assert counts.get("retry", 0) > 0
        s = engine.stats
        assert s.setup_retries == counts["retry"]
        # At 25% loss and 3 retries nearly everything still gets through.
        assert s.admitted > 0

    def test_near_certain_loss_exhausts_retries_into_timeout_class(self):
        lossy = ControlConfig(retry=RetryPolicy(max_retries=2,
                                                loss_rate=0.99))
        _, engine, _ = control_run(control=lossy)
        s = engine.stats
        assert s.offered > 0
        assert s.blocked_timeout > 0
        # Give-ups land in their own outcome class, and the aggregate
        # conserves: every offered session is accounted exactly once.
        assert s.blocked == s.blocked_cac + s.blocked_timeout
        assert s.offered == s.admitted + s.blocked_cac + s.blocked_timeout
        counts = engine.event_log.counts()
        assert counts["block-timeout"] == s.blocked_timeout
        # Every timeout either retried or gave the session up.
        assert counts["setup-timeout"] == (counts["retry"]
                                           + counts["block-timeout"])
        # Exhaustion means exactly 1 + max_retries timeouts per give-up.
        assert counts["setup-timeout"] >= 3 * s.blocked_timeout

    def test_backoff_schedule_is_exponential(self):
        retry = RetryPolicy(backoff_base_cycles=8, backoff_factor=2)
        assert [retry.backoff_cycles(k) for k in (1, 2, 3)] == [8, 16, 32]
        with pytest.raises(ValueError):
            retry.backoff_cycles(0)

    def test_control_config_roundtrips(self):
        cfg = ControlConfig(retry=RetryPolicy(loss_rate=0.1, jitter_cycles=2),
                            high_water=8.0, hold_cycles=500)
        assert ControlConfig.from_dict(cfg.to_dict()) == cfg
        spec = SessionsSpec(churn=CHURN, control=cfg)
        assert SessionsSpec.from_dict(spec.to_dict()) == spec
        plain = SessionsSpec(churn=CHURN)
        assert "control" not in plain.to_dict()

    def test_pressure_series_sampled_on_stride(self):
        cycles = 4_000
        _, engine, _ = control_run(cycles=cycles, control=ControlConfig())
        plane = engine.control_plane
        stride = plane.cfg.estimator_stride
        # One sample per stride multiple inside the run, cycle 0 included.
        assert len(plane.pressure_series) == 1 + (cycles - 1) // stride
        payload = engine.control_payload()
        assert payload["schema"] == "repro-control-v1"
        assert payload["deadline_slack_cycles"] > 0


# ----------------------------------------------------------------------
# Fault cranking and bit-identity on the faulty harness
# ----------------------------------------------------------------------

TRANSIENT = FaultConfig(corruption_rate=0.01, credit_loss_rate=0.002)


class TestControlUnderFaults:
    def test_zero_churn_disabled_engine_is_bit_identical(self):
        cycles, seed, load = 4_000, 3, 0.3

        def run(with_engine):
            sim = FaultySingleRouterSim(CFG, arbiter="coa", scheme="siabp",
                                        seed=seed, faults=TRANSIENT)
            workload = build_cbr_workload(sim.router, load, sim.rng.workload)
            engine = None
            if with_engine:
                spec = SessionsSpec(
                    churn=ChurnConfig(arrivals_per_kcycle=0.0)
                )
                engine = SessionEngine.from_spec(CFG, spec, cycles,
                                                 sim.rng.sessions)
            result = sim.run(
                workload, RunControl(cycles=cycles, warmup_cycles=0),
                sessions=engine,
            )
            return result.to_dict(), sim.rng.state_fingerprint()

        assert run(False) == run(True)

    def test_faulty_control_run_replays_identically(self):
        a = control_run(control=LOSSY, policy="adaptive", faults=TRANSIENT)
        b = control_run(control=LOSSY, policy="adaptive", faults=TRANSIENT)
        assert a[0].to_dict() == b[0].to_dict()
        assert a[1].event_log.lines() == b[1].event_log.lines()
        assert a[1].control_payload() == b[1].control_payload()
        assert a[2] == b[2]

    def test_dead_port_signaling_cranks_to_alternate_port(self):
        dead = dataclasses.replace(TRANSIENT, corruption_rate=0.0,
                                   credit_loss_rate=0.0,
                                   dead_port=2, dead_port_cycle=500)
        cfg = ControlConfig(retry=RetryPolicy(max_retries=3))
        _, engine, _ = control_run(cycles=6_000, load=0.15, control=cfg,
                                   faults=dead)
        s = engine.stats
        counts = engine.event_log.counts()
        # Sessions aimed at the dead port timed out, gave up, and were
        # re-admitted through readmit_elsewhere on a live port.
        assert s.setup_timeouts > 0
        assert s.readmitted_alt > 0
        assert counts.get("admit", 0) > 0
        for line in engine.event_log.lines():
            if "alt_out=" in line:
                assert "alt_out=2" not in line

    def test_dead_port_giveups_do_not_leak_reservations(self):
        dead = FaultConfig(dead_port=1, dead_port_cycle=400)
        cfg = ControlConfig(retry=RetryPolicy(max_retries=2))
        result, engine, _ = control_run(cycles=5_000, load=0.15, control=cfg,
                                        faults=dead)
        # The harness audits the admission ledgers against the live
        # connection table after every teardown/readmit; reaching the end
        # with sane aggregate accounting means nothing leaked.
        s = engine.stats
        unresolved = s.offered - (s.admitted + s.blocked_cac
                                  + s.blocked_timeout)
        # Every offered session resolves into exactly one outcome class,
        # except setups still in flight (retrying) when the run ended.
        assert 0 <= unresolved <= 3
