"""F5 — Fig. 5(a-c): average flit delay vs offered load, CBR traffic.

The paper's Fig. 5 plots average flit delay since generation against
offered load for the three CBR bandwidth classes (64 Kbps, 1.54 Mbps,
55 Mbps), comparing the Candidate-Order Arbiter against the Wave Front
Arbiter.  Its reading (§5.1): both schemes behave alike at low/medium
loads, but WFA saturates around 70% of link bandwidth while COA holds
QoS until ~83% — because WFA maximizes matching size without regard to
connection priorities, while a multiplexed crossbar under WFA also
suffers head-of-line blocking on the single head-of-line request per
link.

Shape claims asserted (S1):
  * WFA's delivered throughput detaches from offered load by ~70%,
    COA's does not until >=80%.
  * At loads in the 70-85% band, every CBR class sees far higher delay
    under WFA than under COA.
"""

import pytest

from conftest import cbr_result
from repro.analysis import (
    knee_by_deficit,
    render_series,
    render_xy_plot,
    sparkline,
)


@pytest.mark.benchmark(group="fig5")
def test_fig5_cbr_flit_delay(benchmark):
    result = benchmark.pedantic(cbr_result, rounds=1, iterations=1)
    arbiters = ("coa", "wfa")
    print()
    for label, sub in (("low", "(a) 64 Kbps"), ("medium", "(b) 1.54 Mbps"),
                       ("high", "(c) 55 Mbps")):
        series = {a: result.class_series(a, label) for a in arbiters}
        print(render_series(
            "load %", series,
            title=f"Fig. 5{sub} connections — avg flit delay (us)",
        ))
        for a in arbiters:
            print(f"  {a}: {sparkline([v for _l, v in series[a]], log=True)}")
        print()
    print(render_xy_plot(
        {a: result.class_series(a, "high") for a in arbiters},
        log_y=True,
        title="Fig. 5(c) as a plot — 55 Mbps class",
        x_label="offered load %", y_label="flit delay us",
    ))

    # S1: saturation loads read from delivered-vs-offered throughput.
    thr = {
        a: [(p.offered_load, p.result.throughput)
            for p in result.sweeps[a].points]
        for a in arbiters
    }
    sat = {a: knee_by_deficit(thr[a], tolerance=0.03) for a in arbiters}
    print(f"Saturation load (throughput detaches from offered): "
          f"COA {sat['coa']:.0%}  WFA {sat['wfa']:.0%} "
          f"(paper: ~83% vs ~70%)")
    assert sat["wfa"] <= 0.76, "WFA must saturate by ~70-75% load"
    assert sat["coa"] >= 0.80, "COA must hold QoS to >=80% load"

    # Per-class delay gap in the band between the two knees.
    for label in ("low", "medium", "high"):
        for (load_c, d_coa), (load_w, d_wfa) in zip(
            result.class_series("coa", label), result.class_series("wfa", label)
        ):
            if 0.72 <= load_c / 100 <= 0.86 and d_coa == d_coa and d_wfa == d_wfa:
                assert d_wfa > 3 * d_coa, (
                    f"{label} @ {load_c:.1f}%: WFA {d_wfa:.1f}us "
                    f"vs COA {d_coa:.1f}us"
                )
