"""Simulation kernel utilities: deterministic RNG streams and run control.

Determinism policy (DESIGN.md §5): every random decision in a simulation
draws from a named :class:`numpy.random.Generator` spawned from one seed.
Streams are split by *role* so that, e.g., two runs differing only in the
arbiter share identical workloads — the arbiter's tie-breaking stream is
separate from the traffic streams.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ROUTER_RNG_DOMAIN",
    "RngStreams",
    "RunControl",
    "generator_fingerprint",
    "router_rng",
]

#: Stable role -> child index mapping.  Append-only: renumbering roles
#: would silently change every seeded experiment.
_ROLES = ("workload", "sources", "arbiter", "misc", "faults", "sessions")

#: SeedSequence spawn-key domain for per-router arbiter streams (the
#: sharded fabric's RNG scheme).  :class:`RngStreams` spawns its role
#: children with length-1 keys ``(i,)``; the length-2 key
#: ``(ROUTER_RNG_DOMAIN, router_id)`` lives in a disjoint subtree, so a
#: router stream can never collide with a role stream of the same seed.
ROUTER_RNG_DOMAIN = 0x5244  # "RD", router domain


def router_rng(seed: int, router_id: int) -> np.random.Generator:
    """The arbiter stream of one router under per-router RNG derivation.

    Keyed by *router id*, never by worker rank or shard layout: a router
    draws the same tie-break sequence whether the run is serial or split
    across any number of shards — the core of the sharded-execution
    byte-identity contract.
    """
    ss = np.random.SeedSequence(seed, spawn_key=(ROUTER_RNG_DOMAIN, router_id))
    return np.random.default_rng(ss)


def generator_fingerprint(rng: np.random.Generator) -> str:
    """SHA-256 over one generator's bit-generator state."""
    return hashlib.sha256(repr(rng.bit_generator.state).encode()).hexdigest()


class RngStreams:
    """Named deterministic RNG streams derived from one seed."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        ss = np.random.SeedSequence(seed)
        children = ss.spawn(len(_ROLES))
        self._streams = {
            role: np.random.default_rng(child)
            for role, child in zip(_ROLES, children)
        }

    def __getitem__(self, role: str) -> np.random.Generator:
        try:
            return self._streams[role]
        except KeyError:
            raise KeyError(
                f"unknown RNG role {role!r}; known: {', '.join(_ROLES)}"
            ) from None

    @property
    def workload(self) -> np.random.Generator:
        """Connection placement, class draws, destinations, phases."""
        return self._streams["workload"]

    @property
    def sources(self) -> np.random.Generator:
        """Traffic generation (trace sizes, Poisson arrivals)."""
        return self._streams["sources"]

    @property
    def arbiter(self) -> np.random.Generator:
        """Arbiter tie-breaking."""
        return self._streams["arbiter"]

    @property
    def misc(self) -> np.random.Generator:
        return self._streams["misc"]

    @property
    def faults(self) -> np.random.Generator:
        """Fault injection (corruption bits, loss/duplication draws)."""
        return self._streams["faults"]

    @property
    def sessions(self) -> np.random.Generator:
        """Session churn (arrivals, holding times, class/destination draws)."""
        return self._streams["sessions"]

    def state_fingerprint(self) -> str:
        """SHA-256 over every stream's bit-generator state.

        Two simulations consumed randomness identically iff their
        fingerprints match — the check behind the telemetry differential
        tests (an observer must not perturb any stream, not even by a
        single draw).
        """
        h = hashlib.sha256()
        for role in _ROLES:
            h.update(role.encode())
            h.update(repr(self._streams[role].bit_generator.state).encode())
        return h.hexdigest()


@dataclass(frozen=True)
class RunControl:
    """Length and warmup of one simulation run.

    ``warmup_cycles`` sets the measurement cut: only flits *generated* at
    or after the warmup point contribute to delay statistics, and the
    crossbar utilization counters restart there.  The paper runs long
    simulations (~6M router cycles); pure-Python runs are shorter and the
    warmup removes the empty-router transient (see EXPERIMENTS.md for the
    lengths used per experiment).

    ``warmup_cycles >= cycles`` is allowed and means the run never leaves
    warmup: ``measured_cycles`` is 0 and every rate statistic comes out
    empty (NaN throughput, zero utilization) rather than leaking
    warmup-time counters into the summary.
    """

    cycles: int
    warmup_cycles: int = 0

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError("cycles must be positive")
        if self.warmup_cycles < 0:
            raise ValueError("warmup_cycles must be >= 0")

    @property
    def measured_cycles(self) -> int:
        """Cycles after the warmup cut (0 when warmup covers the run)."""
        return max(0, self.cycles - self.warmup_cycles)
