"""VBR traffic sources: MPEG frames under the BB and SR injection models.

A VBR connection must deliver one video frame (a burst of flits whose
count varies frame to frame) every 33 ms.  The paper studies two ways the
NIC-side source spreads a frame's flits over the frame time (its Fig. 7):

* **Back-to-Back (BB)** — all of a frame's flits are injected at a fixed
  *peak* rate common to all connections (chosen so the largest frame of
  the whole workload fits in one frame time), starting at the frame
  boundary; the source then idles until the next boundary.
* **Smooth-Rate (SR)** — a frame's flits are spread evenly across the
  whole frame time: the per-frame inter-arrival time is
  ``frame_time / frame_flits``.

Frame delay is measured on the last flit of each frame, which makes the
metric independent of the injection model (paper §5.2).

Scaling (DESIGN.md §2): a pure-Python simulator cannot afford the paper's
~40 000 flit cycles per frame time x hundreds of streams, so
:func:`trace_to_flits` maps a bits-per-frame trace onto a configurable
``frame_time_cycles`` and a ``bandwidth_scale`` that fattens each stream
(fewer, proportionally heavier connections).  Per-connection *fractional*
link load and the I/P/B burst structure — the quantities the results
depend on — are preserved exactly; only the granularity coarsens.
"""

from __future__ import annotations

import numpy as np

from ..router.config import RouterConfig
from .base import InjectionSchedule, TrafficSource
from .mpeg import FRAME_PERIOD_SECONDS

__all__ = ["InjectionModel", "trace_to_flits", "VBRSource", "default_frame_time_cycles"]

#: Injection model names accepted by :class:`VBRSource`.
InjectionModel = str
_MODELS = ("SR", "BB")


def default_frame_time_cycles(config: RouterConfig) -> int:
    """Unscaled frame time: 33 ms in flit cycles (~40k at paper defaults)."""
    return max(1, round(FRAME_PERIOD_SECONDS / config.flit_cycle_seconds))


def trace_to_flits(
    trace_bits: np.ndarray,
    config: RouterConfig,
    frame_time_cycles: int,
    bandwidth_scale: float = 1.0,
) -> np.ndarray:
    """Convert a bits-per-frame trace into flits per frame, scaled.

    The flit count is chosen so each frame's contribution to link load,
    ``flits / frame_time_cycles``, equals ``bandwidth_scale`` times the
    real stream's ``bits / (33 ms * link_rate)`` — i.e. shrinking
    ``frame_time_cycles`` below the physical 40k does *not* inflate load.
    """
    if frame_time_cycles <= 0:
        raise ValueError("frame_time_cycles must be positive")
    if bandwidth_scale <= 0:
        raise ValueError("bandwidth_scale must be positive")
    real_frame_cycles = FRAME_PERIOD_SECONDS / config.flit_cycle_seconds
    flits_real = trace_bits.astype(np.float64) / config.flit_size_bits
    flits = flits_real * (frame_time_cycles / real_frame_cycles) * bandwidth_scale
    out = np.maximum(1, np.round(flits)).astype(np.int64)
    if (out > frame_time_cycles).any():
        raise ValueError(
            "a frame needs more flits than the frame time holds cycles; "
            "lower bandwidth_scale or raise frame_time_cycles"
        )
    return out


class VBRSource(TrafficSource):
    """Frame-driven VBR source under the SR or BB injection model.

    Parameters
    ----------
    frame_flits:
        Flits per frame (one entry per frame; reused cyclically if the
        horizon outlives the trace).
    frame_time_cycles:
        Flit cycles between frame boundaries.
    model:
        ``"SR"`` or ``"BB"``.
    peak_flits_per_frame:
        BB only: the common peak rate, expressed as the frame size that
        exactly fills a frame time at that rate.  The builder passes the
        largest frame of the *whole workload* so all BB connections share
        one peak bandwidth, as in the paper.
    phase_cycles:
        Start offset of the first frame boundary.  The paper aligns
        connections randomly within a GOP time.
    """

    name = "vbr"

    def __init__(
        self,
        frame_flits: np.ndarray,
        frame_time_cycles: int,
        model: InjectionModel = "SR",
        peak_flits_per_frame: int | None = None,
        phase_cycles: int = 0,
    ) -> None:
        if model not in _MODELS:
            raise ValueError(f"model must be one of {_MODELS}, got {model!r}")
        frame_flits = np.asarray(frame_flits, dtype=np.int64)
        if frame_flits.ndim != 1 or len(frame_flits) == 0:
            raise ValueError("frame_flits must be a non-empty 1-D array")
        if (frame_flits <= 0).any():
            raise ValueError("every frame needs at least one flit")
        if (frame_flits > frame_time_cycles).any():
            raise ValueError("a frame cannot exceed frame_time_cycles flits")
        if phase_cycles < 0:
            raise ValueError("phase_cycles must be >= 0")
        self.frame_flits = frame_flits
        self.frame_time_cycles = int(frame_time_cycles)
        self.model = model
        if model == "BB":
            peak = (
                int(frame_flits.max())
                if peak_flits_per_frame is None
                else int(peak_flits_per_frame)
            )
            if peak < frame_flits.max():
                raise ValueError(
                    "peak_flits_per_frame smaller than the largest frame: "
                    "the largest frame would overrun its frame time"
                )
            self.peak_flits_per_frame = peak
        else:
            self.peak_flits_per_frame = None
        self.phase_cycles = int(phase_cycles)

    # ------------------------------------------------------------------

    def mean_load(self) -> float:
        return float(self.frame_flits.mean()) / self.frame_time_cycles

    def peak_load(self) -> float:
        """Highest single-frame load (the VBR admission peak)."""
        return float(self.frame_flits.max()) / self.frame_time_cycles

    def schedule(self, horizon: int, rng: np.random.Generator) -> InjectionSchedule:
        if horizon <= 0:
            return InjectionSchedule.empty()
        w = self.frame_time_cycles
        num_frames = max(0, -(-(horizon - self.phase_cycles) // w))
        cycles_parts: list[np.ndarray] = []
        frame_ids_parts: list[np.ndarray] = []
        last_parts: list[np.ndarray] = []
        trace_len = len(self.frame_flits)
        for k in range(num_frames):
            t0 = self.phase_cycles + k * w
            if t0 >= horizon:
                break
            size = int(self.frame_flits[k % trace_len])
            if self.model == "BB":
                # Fixed peak spacing from the frame boundary.
                iat = w / self.peak_flits_per_frame
            else:
                # Evenly spread over the whole frame time.
                iat = w / size
            offs = np.floor(np.arange(size, dtype=np.float64) * iat).astype(np.int64)
            times = t0 + offs
            cycles_parts.append(times)
            frame_ids_parts.append(np.full(size, k, dtype=np.int64))
            last = np.zeros(size, dtype=bool)
            last[-1] = True
            last_parts.append(last)
        if not cycles_parts:
            return InjectionSchedule.empty()
        cycles = np.concatenate(cycles_parts)
        frame_ids = np.concatenate(frame_ids_parts)
        frame_last = np.concatenate(last_parts)
        # A frame truncated by the horizon loses its last-flit marker with
        # the truncation itself, so its delivery is never measured —
        # matching the paper's whole-frame accounting.
        keep = cycles < horizon
        if not keep.all():
            cycles, frame_ids, frame_last = (
                cycles[keep],
                frame_ids[keep],
                frame_last[keep],
            )
        return InjectionSchedule(cycles, frame_ids, frame_last)
