"""Tests for repro.router.config."""

import math

import pytest

from repro.router.config import DEFAULT_CONFIG, RouterConfig


class TestValidation:
    def test_default_is_valid(self):
        cfg = RouterConfig()
        assert cfg.num_ports == 4
        assert cfg.candidate_levels == 4

    @pytest.mark.parametrize("field,value", [
        ("num_ports", 0),
        ("num_ports", -1),
        ("vcs_per_link", 0),
        ("candidate_levels", 0),
        ("flit_size_bits", 0),
        ("phit_size_bits", 0),
        ("link_rate_bps", 0),
        ("link_rate_bps", -5.0),
        ("vc_buffer_depth", 0),
        ("flit_cycles_per_round", -1),
        ("concurrency_factor", 0.5),
        ("credit_return_delay", -1),
    ])
    def test_rejects_bad_field(self, field, value):
        with pytest.raises(ValueError):
            RouterConfig(**{field: value})

    def test_candidate_levels_cannot_exceed_vcs(self):
        with pytest.raises(ValueError):
            RouterConfig(vcs_per_link=2, candidate_levels=3)

    def test_flit_must_be_multiple_of_phit(self):
        with pytest.raises(ValueError):
            RouterConfig(flit_size_bits=100, phit_size_bits=16)

    def test_round_must_be_multiple_of_vcs(self):
        with pytest.raises(ValueError):
            RouterConfig(vcs_per_link=64, flit_cycles_per_round=100)
        # A correct multiple is accepted.
        cfg = RouterConfig(vcs_per_link=64, flit_cycles_per_round=6400)
        assert cfg.round_cycles == 6400


class TestDerived:
    def test_phits_per_flit(self):
        cfg = RouterConfig(flit_size_bits=1024, phit_size_bits=16)
        assert cfg.phits_per_flit == 64

    def test_flit_cycle_time_matches_link_rate(self):
        cfg = RouterConfig(flit_size_bits=1024, link_rate_bps=1.24e9)
        assert cfg.flit_cycle_seconds == pytest.approx(1024 / 1.24e9)
        assert cfg.flit_cycle_us == pytest.approx(1024 / 1.24e9 * 1e6)

    def test_auto_round_gives_lowest_class_a_slot(self):
        cfg = RouterConfig()  # auto round
        # 64 Kbps must reserve at least one whole slot per round.
        assert cfg.rate_to_slots(64e3) >= 1
        assert cfg.round_cycles % cfg.vcs_per_link == 0

    def test_auto_round_is_minimal_multiple(self):
        cfg = RouterConfig(vcs_per_link=64)
        needed = cfg.link_rate_bps / 64e3
        assert cfg.round_cycles >= needed
        assert cfg.round_cycles - cfg.vcs_per_link < needed

    def test_cycles_us_roundtrip(self):
        cfg = RouterConfig()
        assert cfg.us_to_cycles(cfg.cycles_to_us(12345)) == pytest.approx(12345)

    def test_round_seconds(self):
        cfg = RouterConfig(vcs_per_link=64, flit_cycles_per_round=6400)
        assert cfg.round_seconds == pytest.approx(6400 * cfg.flit_cycle_seconds)


class TestSlots:
    def test_rate_to_slots_roundtrip(self):
        cfg = RouterConfig()
        for rate in (64e3, 1.54e6, 55e6, 155e6):
            slots = cfg.rate_to_slots(rate)
            back = cfg.slots_to_rate(slots)
            # Quantization error is at most one slot's worth of rate.
            assert abs(back - rate) <= cfg.slots_to_rate(1)

    def test_slots_monotone_in_rate(self):
        cfg = RouterConfig()
        rates = [64e3, 1e6, 1.54e6, 10e6, 55e6]
        slots = [cfg.rate_to_slots(r) for r in rates]
        assert slots == sorted(slots)

    def test_minimum_one_slot(self):
        cfg = RouterConfig()
        assert cfg.rate_to_slots(1.0) == 1

    def test_rejects_nonpositive(self):
        cfg = RouterConfig()
        with pytest.raises(ValueError):
            cfg.rate_to_slots(0)
        with pytest.raises(ValueError):
            cfg.slots_to_rate(0)

    def test_rate_to_load(self):
        cfg = RouterConfig(link_rate_bps=1e9)
        assert cfg.rate_to_load(55e6) == pytest.approx(0.055)

    def test_full_link_rate_fills_round(self):
        cfg = RouterConfig(vcs_per_link=64, flit_cycles_per_round=6400)
        assert cfg.rate_to_slots(cfg.link_rate_bps) == cfg.round_cycles


class TestOverrides:
    def test_with_overrides_returns_new_instance(self):
        cfg = RouterConfig()
        other = cfg.with_overrides(num_ports=8)
        assert other.num_ports == 8
        assert cfg.num_ports == 4

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            RouterConfig().with_overrides(num_ports=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.num_ports = 16  # type: ignore[misc]
