"""The Multimedia Router: composition of all subsystems (paper Fig. 1).

:class:`MMRouter` wires together the virtual channel memories, the
credit-based flow control, the NICs on each input link, the admission /
setup machinery, the link scheduler and a switch-scheduling arbiter, and
exposes a single :meth:`step` implementing one flit cycle of the router
pipeline:

1. deliver credits whose return delay elapsed (single-phit control path);
2. link scheduling — each input link ranks its occupied VCs by biased
   priority and nominates ``candidate_levels`` candidates;
3. switch scheduling — the arbiter computes a conflict-free matching;
4. crossbar transfer — matched head flits forward synchronously, credits
   are returned toward the NICs;
5. link transfer — each NIC's link controller forwards at most one flit
   (demand-driven round-robin over connections with flits and credits)
   into the router's VC memory.

Scheduling (2-3) runs on the buffer state at the start of the cycle,
concurrently with the link transfer (5), mirroring the paper's "arbitration
is made concurrently with flit transmission".
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.candidates import CandidateBuffer
from ..core.link_scheduler import RESERVED_SCALE, LinkScheduler
from ..core.matching import Arbiter, Candidate
from ..core.priorities import PriorityScheme
from ..core.registry import make_arbiter, make_scheme
from .admission import AdmissionController
from .config import RouterConfig
from .connection import Connection, ConnectionTable, TrafficClass
from .credits import CreditState
from .crossbar import Crossbar, Departure
from .nic import NIC
from .routing import SetupResult, SetupUnit
from .vc_memory import VCMemory

__all__ = ["MMRouter"]


class MMRouter:
    """A single MMR with one NIC per input link (paper Fig. 4 testbed)."""

    def __init__(
        self,
        config: RouterConfig,
        arbiter: Arbiter | str = "coa",
        scheme: PriorityScheme | str = "siabp",
        fast_path: bool = True,
    ) -> None:
        self.config = config
        self.table = ConnectionTable(config)
        self.admission = AdmissionController(config)
        self.setup_unit = SetupUnit(config, self.table, self.admission)
        self.vc_memory = VCMemory(config)
        self.crossbar = Crossbar(config)
        self.credits = CreditState(config)
        self.nics = [NIC(config, p) for p in range(config.num_ports)]
        self.arbiter = (
            make_arbiter(arbiter, config) if isinstance(arbiter, str) else arbiter
        )
        self.scheme = make_scheme(scheme, config) if isinstance(scheme, str) else scheme
        #: True when the scheme keeps per-VC scheduler state (fair
        #: queueing): the router then feeds it the connection and
        #: service lifecycle (``on_setup``/``on_teardown``/``on_service``).
        self.scheme_stateful = bool(getattr(self.scheme, "stateful", False))
        if self.scheme_stateful:
            shape = getattr(self.scheme, "shape", None)
            if shape is not None and shape != (config.num_ports, config.vcs_per_link):
                raise ValueError(
                    f"stateful scheme {self.scheme.name!r} was built for "
                    f"shape {shape}, router is "
                    f"{(config.num_ports, config.vcs_per_link)}"
                )
        self.link_scheduler = LinkScheduler(config, self.scheme)
        n, v = config.num_ports, config.vcs_per_link
        # Per-VC connection attributes, kept as arrays for the vectorized
        # link scheduler.  slots == 0 / dest == -1 mark unassigned VCs.
        self._slots = np.zeros((n, v), dtype=np.int64)
        self._dest = np.full((n, v), -1, dtype=np.int64)
        self._conn_of_vc = np.full((n, v), -1, dtype=np.int64)
        # Priority tier: RESERVED_SCALE for CBR/VBR VCs, 1.0 for
        # best-effort — reserved traffic strictly outranks best-effort
        # at link scheduling (the MMR gives best-effort only leftover
        # bandwidth).  ``_reserved`` is its boolean twin for the buffer
        # path (the integer-exact ranking wants a mask, not a multiplier).
        self._tier = np.ones((n, v), dtype=np.float64)
        self._reserved = np.zeros((n, v), dtype=bool)
        # Bumped on every connection setup/teardown; lets the link
        # scheduler cache mirrors of the arrays above across cycles.
        self._conn_version = 0
        #: True routes scheduling through the preallocated candidate
        #: buffer (zero-allocation hot path); False keeps the object-based
        #: reference pipeline.  Both produce identical grants draw for
        #: draw — the differential tests pin it.
        self.fast_path = fast_path
        self._cand_buf = CandidateBuffer(n, config.candidate_levels)

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def establish(
        self,
        in_port: int,
        out_port: int,
        traffic_class: TrafficClass,
        avg_slots: int,
        peak_slots: int | None = None,
    ) -> SetupResult:
        """PCS setup: probe, admission test, VC + bandwidth reservation."""
        result = self.setup_unit.request(
            in_port, out_port, traffic_class, avg_slots, peak_slots
        )
        if result.accepted:
            conn = result.connection
            assert conn is not None
            self._slots[conn.in_port, conn.vc] = conn.avg_slots
            self._dest[conn.in_port, conn.vc] = conn.out_port
            self._conn_of_vc[conn.in_port, conn.vc] = conn.conn_id
            self._tier[conn.in_port, conn.vc] = (
                RESERVED_SCALE if conn.is_reserved else 1.0
            )
            self._reserved[conn.in_port, conn.vc] = conn.is_reserved
            self._conn_version += 1
            if self.scheme_stateful:
                self.scheme.on_setup(
                    conn.in_port,
                    conn.vc,
                    conn.out_port,
                    conn.avg_slots,
                    conn.is_reserved,
                )
        return result

    def teardown(self, conn_id: int) -> Connection:
        """Release a connection (its VC buffers must have drained)."""
        conn = self.table.get(conn_id)
        if self.vc_memory.occupancy_of(conn.in_port, conn.vc) != 0:
            raise RuntimeError(
                f"cannot tear down connection {conn_id}: flits still "
                "buffered in its virtual channel"
            )
        self.setup_unit.teardown(conn_id)
        self._clear_vc_state(conn)
        return conn

    def force_teardown(
        self, conn_id: int, *, restore_credits: bool = True
    ) -> tuple[Connection, int]:
        """Tear a connection down even with flits still buffered.

        The fault-recovery path: a dead output link or an unrecoverable
        virtual channel means the buffered flits can never depart, so
        they are discarded and their buffer slots freed.  Returns the
        connection and the number of flits dropped.  ``restore_credits``
        returns the freed slots to the NIC-side credit pool (set it
        ``False`` for inter-router input ports, whose credits live on the
        upstream router).
        """
        conn = self.table.get(conn_id)
        dropped = self.vc_memory.occupancy_of(conn.in_port, conn.vc)
        for _ in range(dropped):
            self.vc_memory.pop(conn.in_port, conn.vc)
        if restore_credits and dropped:
            self.credits.restore(conn.in_port, conn.vc, dropped)
        self.setup_unit.teardown(conn_id)
        self._clear_vc_state(conn)
        return conn, dropped

    def renegotiate_peak(self, conn_id: int, new_peak_slots: int):
        """Renegotiate a VBR connection's peak reservation in place.

        Runs the admission test for the peak delta and, on acceptance,
        updates the ledgers and the connection table atomically.  The
        connection keeps its id, VC and average reservation; only the
        statistically-multiplexed peak share changes.  Returns the
        :class:`~repro.router.admission.AdmissionDecision`.
        """
        conn = self.table.get(conn_id)
        decision = self.admission.renegotiate_peak(conn, new_peak_slots)
        if decision:
            self.admission.commit_peak(conn, new_peak_slots)
            self.table.replace(
                conn_id, dataclasses.replace(conn, peak_slots=new_peak_slots)
            )
            # Peak does not feed the per-VC scheduling arrays, but bump
            # the version anyway: any cached mirror of connection state
            # must observe the change.
            self._conn_version += 1
        return decision

    def _clear_vc_state(self, conn: Connection) -> None:
        self._slots[conn.in_port, conn.vc] = 0
        self._dest[conn.in_port, conn.vc] = -1
        self._conn_of_vc[conn.in_port, conn.vc] = -1
        self._tier[conn.in_port, conn.vc] = 1.0
        self._reserved[conn.in_port, conn.vc] = False
        self._conn_version += 1
        if self.scheme_stateful:
            self.scheme.on_teardown(conn.in_port, conn.vc)

    def connection_at(self, in_port: int, vc: int) -> int:
        """conn_id occupying (port, vc), or -1."""
        return int(self._conn_of_vc[in_port, vc])

    # ------------------------------------------------------------------
    # One flit cycle
    # ------------------------------------------------------------------

    def step(self, now: int, rng: np.random.Generator) -> list[Departure]:
        """Advance the router by one flit cycle; return the departures."""
        self.credits.deliver(now)

        if self.fast_path:
            buf = self._link_schedule_into(now)
            grants = self.arbiter.match_buffer(buf, rng)
        else:
            candidates = self._link_schedule(now)
            grants = self.arbiter.match(candidates, rng)
        departures = self.crossbar.transfer(grants, self.vc_memory, now)
        if self.scheme_stateful and departures:
            self.notify_service(departures, now)
        for dep in departures:
            self.credits.schedule_return(dep.in_port, dep.vc, now)

        self._accept_from_nics(now)
        return departures

    def step_quiet(self, now: int) -> None:
        """One cycle with every VC buffer empty — :meth:`step` minus the
        provably grant-free scheduling work.

        With no VC occupied, link scheduling yields an empty candidate
        set and every arbiter returns an empty matching without drawing
        RNG; the only state the full pipeline would still move is the
        credit landings, the wrapped WFA's start diagonal (rotated one
        position per sweep whether or not candidates exist — mirrored by
        ``skip_idle_cycles(1)``), the crossbar cycle counter, and the
        NIC-to-VC transfers.  The event-skipping loops call this on
        busy-NIC/empty-VC cycles; callers must ensure
        ``vc_memory._occ_mask == 0`` or results diverge.
        """
        self.credits.deliver(now)
        self.arbiter.skip_idle_cycles(1)
        self.crossbar.cycles += 1
        self._accept_from_nics(now)

    def notify_service(self, departures: list[Departure], now: int) -> None:
        """Feed crossbar services to a stateful scheme.

        Every cycle loop that calls ``crossbar.transfer`` directly
        (fault harness, multi-router network, perf harness) must invoke
        this when ``scheme_stateful`` — the fair-queueing virtual clocks
        and deficit counters advance on actual service.
        """
        scheme = self.scheme
        for dep in departures:
            scheme.on_service(dep.in_port, dep.vc, dep.out_port, now)

    def _link_schedule(self, now: int) -> list[list[Candidate]]:
        """Object-path link scheduling (reference; fault harness uses it)."""
        heads = self.vc_memory.heads_all()
        return self.link_scheduler.select_batch(
            heads, self._slots, self._dest, now, self._tier
        )

    def _link_schedule_into(self, now: int) -> CandidateBuffer:
        """Buffer-path link scheduling into the preallocated buffer."""
        if self.scheme.integer_valued:
            occ_mask, heads_q = self.vc_memory.occupancy_state()
            return self.link_scheduler.select_into_sparse(
                self._cand_buf,
                occ_mask,
                heads_q,
                self._slots,
                self._dest,
                now,
                self._reserved,
                state_version=self._conn_version,
            )
        heads = self.vc_memory.sched_view()
        return self.link_scheduler.select_into(
            self._cand_buf,
            heads,
            self._slots,
            self._dest,
            now,
            self._reserved,
            state_version=self._conn_version,
        )

    def _accept_from_nics(self, now: int) -> None:
        for port, nic in enumerate(self.nics):
            vc = nic.select(self.credits.mask_for(port))
            if vc < 0:
                continue
            gen_cycle, frame_id, frame_last = nic.pop(vc)
            self.credits.consume(port, vc)
            self.vc_memory.push(port, vc, gen_cycle, frame_id, frame_last, now)

    # ------------------------------------------------------------------
    # Inspection / invariants
    # ------------------------------------------------------------------

    def is_idle(self) -> bool:
        """True when no flit is buffered in the router or any NIC.

        The event-skipping engine's idle predicate: when this holds, a
        :meth:`step` can move no flit and consult no RNG — the arbiters
        see empty candidate sets and return without drawing — so the
        cycle may be skipped analytically.  Credits still in flight do
        *not* block idleness: :meth:`CreditState.deliver` drains every
        land-cycle at or before ``now`` in sorted order, and a landed
        credit is unobservable until a NIC has a flit to forward.
        Both reads are O(1) on existing occupancy bitmasks.
        """
        if self.vc_memory._occ_mask:
            return False
        for nic in self.nics:
            if nic._mask:
                return False
        return True

    def buffered_flits(self) -> int:
        """Flits inside the router (excludes NIC backlogs)."""
        return self.vc_memory.total_flits()

    def nic_backlog(self) -> int:
        """Flits waiting in all NICs."""
        return sum(nic.backlog() for nic in self.nics)

    def nic_backlogs(self) -> list[int]:
        """Per-port NIC backlog, in port order (telemetry sampling)."""
        return [nic.backlog() for nic in self.nics]

    def check_flow_control_invariant(self) -> None:
        """credits + in-flight credits + occupancy == depth, per VC."""
        depth = self.config.vc_buffer_depth
        total_slots = self.config.num_ports * self.config.vcs_per_link * depth
        held = int(self.credits.counters.sum())
        in_flight = self.credits.in_flight
        occupied = self.vc_memory.total_flits()
        if held + in_flight + occupied != total_slots:
            raise AssertionError(
                "flow-control invariant violated: "
                f"credits({held}) + in_flight({in_flight}) + "
                f"buffered({occupied}) != slots({total_slots})"
            )
