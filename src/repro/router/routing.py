"""Routing and arbitration unit: connection setup and teardown.

Multimedia connections in the MMR are established with **Pipelined
Circuit Switching** (PCS): the source emits a routing probe that walks
the path reserving a virtual channel, link bandwidth and buffer space at
every hop; an acknowledgment returns along the reserved path and data may
then flow.  Best-effort messages skip reservation entirely and travel
under **Virtual Cut-Through** (they still occupy a VC while present).

For the single-router experiments the paper pre-establishes all
connections ("all the connections are considered to be active throughout
all the simulation time"); this unit is what does that pre-establishment,
and the network extension reuses it per hop.
"""

from __future__ import annotations

from dataclasses import dataclass

from .admission import AdmissionController
from .config import RouterConfig
from .connection import Connection, ConnectionTable, TrafficClass

__all__ = ["SetupResult", "SetupUnit"]


@dataclass(frozen=True)
class SetupResult:
    """Outcome of a PCS setup attempt."""

    accepted: bool
    connection: Connection | None
    reason: str
    #: Cycles from probe emission to ACK receipt (reservation latency).
    latency_cycles: int

    def __bool__(self) -> bool:
        return self.accepted


class SetupUnit:
    """Processes PCS probes against the router's admission state.

    Probe/ACK traversal latency is modelled as a constant: the probe
    crosses the router (one flit cycle of pipeline), the admission check
    happens within the cycle, and the single-phit ACK returns in
    ``credit_return_delay`` cycles — consistent with how the simulator
    treats other single-phit control traffic.
    """

    def __init__(
        self,
        config: RouterConfig,
        table: ConnectionTable,
        admission: AdmissionController,
    ) -> None:
        self.config = config
        self.table = table
        self.admission = admission
        self._next_id = 0
        #: Counters for inspection.
        self.accepted = 0
        self.rejected = 0

    def _setup_latency(self) -> int:
        return 1 + self.config.credit_return_delay

    def request(
        self,
        in_port: int,
        out_port: int,
        traffic_class: TrafficClass,
        avg_slots: int,
        peak_slots: int | None = None,
    ) -> SetupResult:
        """Attempt to establish a connection (probe + admission + ack)."""
        latency = self._setup_latency()
        vc = self.table.free_vc(in_port)
        if vc is None:
            self.rejected += 1
            return SetupResult(
                False, None, f"no free virtual channel on input {in_port}", latency
            )
        conn = Connection(
            conn_id=self._next_id,
            in_port=in_port,
            vc=vc,
            out_port=out_port,
            traffic_class=traffic_class,
            avg_slots=avg_slots,
            peak_slots=peak_slots if peak_slots is not None else avg_slots,
        )
        decision = self.admission.check(conn)
        if not decision:
            self.rejected += 1
            return SetupResult(False, None, decision.reason, latency)
        self.table.add(conn)
        self.admission.commit(conn)
        self._next_id += 1
        self.accepted += 1
        return SetupResult(True, conn, decision.reason, latency)

    def teardown(self, conn_id: int) -> Connection:
        """Release a connection's VC and bandwidth reservation."""
        conn = self.table.remove(conn_id)
        self.admission.release(conn)
        return conn
