"""Tests for repro.router.presets and repro.analysis.plots."""

import pytest

from repro.analysis.plots import render_xy_plot
from repro.router.config import RouterConfig
from repro.router.presets import (
    PRESETS,
    config_from_dict,
    config_to_dict,
    preset,
)


class TestPresets:
    def test_all_presets_valid(self):
        for name, config in PRESETS.items():
            assert isinstance(config, RouterConfig), name

    def test_paper_preset_fields(self):
        cfg = preset("paper-4x4")
        assert cfg.num_ports == 4
        assert cfg.candidate_levels == 4
        assert cfg.flit_size_bits == 1024
        assert cfg.link_rate_bps == 1.24e9

    def test_preset_overrides(self):
        cfg = preset("paper-4x4", num_ports=8)
        assert cfg.num_ports == 8
        # The stored preset is untouched.
        assert PRESETS["paper-4x4"].num_ports == 4

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            preset("gigarouter")

    def test_dict_roundtrip(self):
        for name, config in PRESETS.items():
            data = config_to_dict(config)
            assert config_from_dict(data) == config, name

    def test_from_dict_rejects_unknown_keys(self):
        data = config_to_dict(preset("tiny"))
        data["warp_drive"] = True
        with pytest.raises(ValueError, match="unknown config fields"):
            config_from_dict(data)

    def test_from_dict_defaults_missing_keys(self):
        cfg = config_from_dict({"num_ports": 8})
        assert cfg.num_ports == 8
        assert cfg.vcs_per_link == RouterConfig().vcs_per_link


class TestXYPlot:
    SERIES = {
        "a": [(0, 1.0), (50, 2.0), (100, 100.0)],
        "b": [(0, 1.0), (50, 50.0), (100, 5000.0)],
    }

    def test_basic_render(self):
        text = render_xy_plot(self.SERIES, width=40, height=8,
                              title="demo", x_label="load", y_label="delay")
        assert "demo" in text
        assert "o=a" in text and "x=b" in text
        assert "load vs delay" in text
        # Axis extremes are labelled.
        assert "0" in text and "100" in text

    def test_log_scale_annotated(self):
        text = render_xy_plot(self.SERIES, log_y=True)
        assert "(log y)" in text

    def test_markers_land_on_grid(self):
        text = render_xy_plot({"a": [(0, 1.0), (10, 2.0)]}, width=20, height=5)
        body = [l for l in text.splitlines() if "|" in l]
        assert sum(line.count("o") for line in body) == 2

    def test_nan_points_skipped(self):
        text = render_xy_plot(
            {"a": [(0, 1.0), (5, float("nan")), (10, 3.0)]},
        )
        body = [l for l in text.splitlines() if "|" in l]
        assert sum(line.count("o") for line in body) == 2

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            render_xy_plot({"a": [(0, float("nan"))]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_xy_plot({})
        with pytest.raises(ValueError):
            render_xy_plot(self.SERIES, width=5)

    def test_flat_series(self):
        text = render_xy_plot({"a": [(0, 3.0), (10, 3.0)]})
        assert "o" in text
