"""Phit-level link transfer model.

The MMR uses large flits (1024 bits) to amortize arbitration and crossbar
reconfiguration, which would inflate latency if a flit had to be fully
received before being forwarded.  The paper's answer (§2): "The use of
large flits will increase flit latency.  However, this is avoided by
pipelining flit transmission at the phit level" — a flit's phits start
crossing the next stage as soon as the first phit (plus a fixed stage
delay) has arrived, virtual-cut-through style.

The main simulator abstracts all of this into the flit cycle (a matched
flit crosses link + crossbar in one flit cycle); this module makes the
abstraction *checkable*: it simulates a multi-stage phit pipeline exactly
and provides the closed forms the paper's flit-cycle abstraction relies
on.  The test suite verifies simulation == closed form, and that the
pipelined latency stays within one flit cycle per hop while
store-and-forward would pay the full serialization latency at every hop.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import RouterConfig

__all__ = [
    "PhitPipeline",
    "pipelined_latency_phits",
    "store_and_forward_latency_phits",
]


def pipelined_latency_phits(
    phits_per_flit: int, hops: int, stage_delay: int = 1
) -> int:
    """Phit times for one flit to fully arrive after ``hops`` stages,
    with phit-level cut-through (each stage adds ``stage_delay`` phit
    times of latency before it starts re-transmitting)."""
    if phits_per_flit <= 0:
        raise ValueError(f"phits_per_flit must be positive, got {phits_per_flit}")
    if hops <= 0:
        raise ValueError(f"hops must be positive, got {hops}")
    if stage_delay < 0:
        raise ValueError(f"stage_delay must be >= 0, got {stage_delay}")
    # The head phit reaches the destination after hops * (1 + stage_delay)
    # ... minus the source's own stage (the source serializes directly).
    head_arrival = hops + (hops - 1) * stage_delay
    return head_arrival + (phits_per_flit - 1)


def store_and_forward_latency_phits(phits_per_flit: int, hops: int) -> int:
    """Phit times for one flit across ``hops`` stages when every stage
    must receive the whole flit before forwarding it."""
    if phits_per_flit <= 0 or hops <= 0:
        raise ValueError("phits_per_flit and hops must be positive")
    return hops * phits_per_flit


@dataclass
class _Stage:
    """One pipeline stage: received phit count and retransmit progress."""

    received: int = 0
    sent: int = 0


class PhitPipeline:
    """Exact phit-by-phit simulation of a flit crossing a pipeline.

    ``hops`` stages connect source to sink; each stage forwards one phit
    per phit time and may forward phit ``k`` once it has received it and
    ``stage_delay`` phit times have elapsed since (cut_through=True), or
    once the whole flit has been received (cut_through=False).
    """

    def __init__(
        self,
        phits_per_flit: int,
        hops: int,
        cut_through: bool = True,
        stage_delay: int = 1,
    ) -> None:
        if phits_per_flit <= 0 or hops <= 0:
            raise ValueError("phits_per_flit and hops must be positive")
        if stage_delay < 0:
            raise ValueError("stage_delay must be >= 0")
        self.phits_per_flit = phits_per_flit
        self.hops = hops
        self.cut_through = cut_through
        self.stage_delay = stage_delay

    @classmethod
    def from_config(
        cls, config: RouterConfig, hops: int, cut_through: bool = True
    ) -> "PhitPipeline":
        return cls(config.phits_per_flit, hops, cut_through)

    def simulate(self) -> int:
        """Phit times until the last phit reaches the sink.

        Event-exact simulation: per phit time, every stage that is
        eligible forwards one phit downstream (the source is stage 0's
        upstream and always eligible).
        """
        p = self.phits_per_flit
        # arrival_time[s][k] = phit time at which stage s has phit k.
        # The source (stage index -1) has every phit at time k + 1 after
        # serializing it onto the first link... we model links+stages
        # uniformly: sending from stage s begins when eligible, one phit
        # per time step.
        inf = float("inf")
        arrivals = [[inf] * p for _ in range(self.hops)]
        # Stage 0 receives phit k straight off the source's serialization.
        for k in range(p):
            arrivals[0][k] = k + 1
        for s in range(1, self.hops):
            send_free = 0.0  # next phit time stage s-1's output is free
            for k in range(p):
                have = arrivals[s - 1][k]
                if self.cut_through:
                    ready = have + self.stage_delay
                else:
                    ready = arrivals[s - 1][p - 1] + self.stage_delay
                start = max(ready, send_free)
                arrivals[s][k] = start + 1
                send_free = start + 1
        return int(arrivals[-1][p - 1])

    def closed_form(self) -> int:
        """The latency the flit-cycle abstraction assumes."""
        if self.cut_through:
            return pipelined_latency_phits(
                self.phits_per_flit, self.hops, self.stage_delay
            )
        # Store and forward with per-stage delay.
        return (
            store_and_forward_latency_phits(self.phits_per_flit, self.hops)
            + (self.hops - 1) * self.stage_delay
        )

    def latency_flit_cycles(self, config: RouterConfig) -> float:
        """Latency of the pipeline expressed in flit cycles."""
        return self.simulate() / config.phits_per_flit
