"""Offered-load sweeps: the x-axis of every figure in the paper.

A sweep runs one simulation per (arbiter, target load) point.  Fairness
rule: all arbiters at the same load share the same seed, and because
workload construction and arbiter tie-breaking draw from separate RNG
streams (see :class:`repro.sim.engine.RngStreams`), they see *identical*
connection layouts and injection schedules — the arbiter is the only
difference, as in the paper's comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..router.config import RouterConfig
from ..router.router import MMRouter
from ..traffic.mixes import Workload
from .engine import RunControl
from .simulation import SimResult

__all__ = ["SweepPoint", "LoadSweep", "run_load_sweep"]

#: Builds a workload onto a router: (router, workload_rng, target_load).
WorkloadBuilder = Callable[[MMRouter, np.random.Generator, float], Workload]


@dataclass(frozen=True)
class SweepPoint:
    """One (target load, result) pair of a sweep."""

    target_load: float
    result: SimResult
    #: Telemetry payload (``repro.obs`` schema) when the sweep ran with
    #: telemetry enabled; ``None`` otherwise.
    telemetry: dict | None = None

    @property
    def offered_load(self) -> float:
        return self.result.offered_load


@dataclass
class LoadSweep:
    """All points of one arbiter's sweep, ascending by load."""

    arbiter: str
    points: list[SweepPoint]

    def series(self, pick: Callable[[SimResult], float]) -> list[tuple[float, float]]:
        """(offered load %, metric) pairs, the shape the figures plot."""
        return [(p.offered_load * 100.0, pick(p.result)) for p in self.points]

    def loads_percent(self) -> list[float]:
        return [p.offered_load * 100.0 for p in self.points]


def run_load_sweep(
    loads: Sequence[float],
    builder: WorkloadBuilder,
    config: RouterConfig,
    arbiter: str,
    control: RunControl,
    scheme: str = "siabp",
    seed: int = 0,
    *,
    jobs: int = 1,
    store=None,
    telemetry=None,
) -> LoadSweep:
    """Simulate one arbiter across the given target loads.

    All points route through the campaign executor
    (:mod:`repro.campaign.executor`).  When ``builder`` is a declarative
    :class:`~repro.campaign.plan.WorkloadSpec`, points can fan out over
    ``jobs`` worker processes and be served from a
    :class:`~repro.campaign.store.ResultStore` cache; an ad-hoc builder
    callable cannot be hashed or shipped to a worker, so it always runs
    serially and uncached (``jobs``/``store`` are ignored).

    ``telemetry`` optionally takes a
    :class:`~repro.obs.export.TelemetryConfig`; each point then runs
    instrumented and its :attr:`SweepPoint.telemetry` carries the
    exported payload.
    """
    from ..campaign.executor import execute_point, run_campaign
    from ..campaign.plan import CampaignPlan, WorkloadSpec

    if isinstance(builder, WorkloadSpec):
        plan = CampaignPlan.grid(
            f"sweep-{arbiter}",
            config,
            arbiters=(arbiter,),
            loads=loads,
            seeds=(seed,),
            workload=builder,
            control=control,
            scheme=scheme,
        )
        campaign = run_campaign(
            plan,
            jobs=jobs,
            store=store,
            write_manifest=False,
            telemetry=telemetry,
        )
        points = [
            SweepPoint(o.spec.target_load, o.result, o.telemetry)
            for o in campaign.outcomes
        ]
        return LoadSweep(arbiter, points)

    points = []
    for load in loads:
        out = execute_point(
            builder, config, arbiter, control, load, seed, scheme,
            telemetry=telemetry,
        )
        if telemetry is not None:
            result, session = out
            points.append(SweepPoint(load, result, session.to_payload()))
        else:
            points.append(SweepPoint(load, out))
    return LoadSweep(arbiter, points)
