"""F7 — Fig. 7: the Back-to-Back and Smooth-Rate injection models.

The paper's Fig. 7 is a timing diagram: under BB a frame's flits are
injected at the common peak rate from the frame boundary and the source
then idles; under SR the same flits are evenly spaced across the whole
frame time.  This bench regenerates both timelines for the same two-frame
trace and asserts the defining properties.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.traffic.vbr import VBRSource

FRAME_TIME = 120
FRAMES = np.array([6, 12])  # a small and a large frame
PEAK = 24  # common peak: IATp = FRAME_TIME / PEAK = 5 cycles


def _build():
    rng = np.random.default_rng(0)
    out = {}
    for model in ("BB", "SR"):
        src = VBRSource(
            FRAMES,
            FRAME_TIME,
            model=model,
            peak_flits_per_frame=PEAK if model == "BB" else None,
        )
        out[model] = src.schedule(2 * FRAME_TIME, rng)
    return out


@pytest.mark.benchmark(group="fig7")
def test_fig7_injection_models(benchmark):
    schedules = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    print("Fig. 7 — VBR injection models (cycle of each flit injection)")
    rows = []
    for model, sched in schedules.items():
        for frame in (0, 1):
            times = sched.cycles[sched.frame_ids == frame]
            rows.append(
                [model, frame, len(times), int(times[0]), int(times[-1]),
                 f"{np.diff(times).mean():.1f}" if len(times) > 1 else "-"]
            )
    print(render_table(
        ["model", "frame", "flits", "first cycle", "last cycle", "mean IAT"],
        rows,
    ))

    bb, sr = schedules["BB"], schedules["SR"]
    iatp = FRAME_TIME / PEAK

    for frame, size in enumerate(FRAMES):
        bb_times = bb.cycles[bb.frame_ids == frame]
        sr_times = sr.cycles[sr.frame_ids == frame]
        boundary = frame * FRAME_TIME
        # Both models start at the frame boundary.
        assert bb_times[0] == boundary
        assert sr_times[0] == boundary
        # BB: constant peak spacing, then idle until the next boundary.
        np.testing.assert_array_equal(np.diff(bb_times), int(iatp))
        assert bb_times[-1] == boundary + (size - 1) * iatp
        assert bb_times[-1] < boundary + FRAME_TIME / 2  # long idle tail
        # SR: spacing = frame_time / frame size; spans the whole window.
        sr_iat = FRAME_TIME / size
        assert abs(np.diff(sr_times).mean() - sr_iat) < 1.0
        assert sr_times[-1] >= boundary + FRAME_TIME - sr_iat - 1
        # Same flits, same frame-boundary alignment, different pacing:
        # BB finishes strictly earlier than SR.
        assert bb_times[-1] < sr_times[-1]
