"""Shard worker process: build the replica, then serve barrier commands.

The coordinator drives workers with a tiny message protocol over one
duplex :func:`multiprocessing.Pipe` connection per worker (pipes send
from the calling thread directly — no feeder-thread latency per
barrier, which matters when busy traffic forces length-1 windows):

=================  =============================================  =========
command            operands                                       reply
=================  =============================================  =========
``window``         start, end, flits, credits, drain oracle       ``barrier``
``drain``          start, end, flits, credits                     ``barrier``
``finish``         —                                              ``result``
``stop``           —                                              (exits)
=================  =============================================  =========

Any exception inside the worker is reported as an ``error`` message
carrying the formatted traceback, so the coordinator can fail loudly
instead of hanging on a silent pipe.

Crash-injection seam (tests only): ``REPRO_SHARD_CRASH=rank:cycle:path``
hard-kills the named worker rank with :func:`os._exit` the first time a
window reaches ``cycle``, using ``path`` as a crashed-once flag file —
so a campaign retry of the same point succeeds on its second attempt.
"""

from __future__ import annotations

import os
import traceback

from .runtime import ShardRuntime, ShardTask

__all__ = ["CRASH_ENV", "worker_main"]

#: Environment variable naming the crash-injection seam.
CRASH_ENV = "REPRO_SHARD_CRASH"


def _crash_plan() -> tuple[int, int, str] | None:
    raw = os.environ.get(CRASH_ENV)
    if not raw:
        return None
    rank_s, cycle_s, flag = raw.split(":", 2)
    return int(rank_s), int(cycle_s), flag


def _maybe_crash(rank: int, start: int, end: int) -> None:
    plan = _crash_plan()
    if plan is None:
        return
    crash_rank, crash_cycle, flag = plan
    if rank != crash_rank or not (start <= crash_cycle < end):
        return
    if os.path.exists(flag):
        return  # already crashed once: let the retry succeed
    with open(flag, "w", encoding="utf-8") as fh:
        fh.write(f"crashed at cycle {crash_cycle}\n")
    os._exit(1)


def worker_main(task: ShardTask, owned: tuple[int, ...], rank: int,
                conn) -> None:
    """Process entry point: serve one shard until ``stop``."""
    try:
        runtime = ShardRuntime(task, owned, rank)
        conn.send(("barrier", rank, runtime.barrier_payload()))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "window":
                _start, _end, flits, credits, oracle = msg[1:]
                runtime.apply_barrier(flits, credits, oracle)
                _maybe_crash(rank, _start, _end)
                runtime.run_window(_start, _end)
                conn.send(("barrier", rank, runtime.barrier_payload()))
            elif cmd == "drain":
                _start, _end, flits, credits = msg[1:]
                runtime.apply_barrier(flits, credits, {})
                _maybe_crash(rank, _start, _end)
                runtime.run_drain_window(_start, _end)
                conn.send(("barrier", rank, runtime.barrier_payload()))
            elif cmd == "finish":
                conn.send(("result", rank, runtime.final_stats()))
            elif cmd == "stop":
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown shard command {cmd!r}")
    except BaseException:
        try:
            conn.send(("error", rank, traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already torn down
            pass
