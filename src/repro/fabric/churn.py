"""Fabric churn timelines: sessions between (router, port) endpoints.

The single-router churn generator draws sessions per input port of one
switch; the fabric generalisation draws them per *host port of every
host-attached router* in a topology, with a destination (router, port)
pair picked uniformly over the other host routers.  Everything else —
holding times, class bodies, injection schedules — reuses the
single-router machinery (:func:`repro.sessions.churn.make_session_spec`),
so the two generators stay statistically comparable.

Determinism contract (same as the single-router timeline): the whole
timeline is drawn up front from the ``sessions`` RNG stream, routers in
id order and ports in index order; a zero arrival rate draws nothing at
all, which is what makes zero-churn fabric runs bit-identical to plain
:class:`~repro.network.multirouter.MultiRouterNetwork` runs.

VBR note: per-GOP peak renegotiation is a single-router protocol (one
admission controller); a multi-hop renegotiation would need an atomic
commit across every hop's ledger.  Fabric sessions therefore reserve
their lifetime peak on every hop (``renegotiate`` is forced off when the
class body is drawn — the draw order, and hence every other session's
schedule, is unchanged).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..network.topology import Topology
from ..router.config import RouterConfig
from ..sessions.churn import (
    ChurnConfig,
    SessionSpec,
    _draw_class,
    make_session_spec,
)

__all__ = ["FabricSession", "generate_fabric_timeline"]


@dataclass
class FabricSession:
    """One timeline entry: a session body plus its router endpoints.

    ``spec.in_port`` / ``spec.out_port`` are host ports of
    ``src_router`` / ``dst_router`` respectively.
    """

    src_router: int
    dst_router: int
    spec: SessionSpec


def generate_fabric_timeline(
    topology: Topology,
    hosts: Sequence[int],
    config: RouterConfig,
    churn: ChurnConfig,
    horizon_cycles: int,
    rng: np.random.Generator,
) -> list[FabricSession]:
    """Generate the fabric churn timeline, sorted by arrival.

    ``hosts`` are the host-attached routers (every router for the flat
    topologies; the edge stage of a fat-tree).  Each of their host ports
    runs its own Poisson arrival process off the shared stream; per
    arrival the draw order is fixed: destination router, destination
    port, then the session body.
    """
    if horizon_cycles <= 0:
        raise ValueError("horizon_cycles must be positive")
    hosts = list(hosts)
    if len(hosts) < 2:
        raise ValueError("a fabric timeline needs at least 2 host routers")
    if churn.arrivals_per_kcycle == 0:
        return []
    churn = dataclasses.replace(churn, renegotiate=False)
    rate = churn.arrivals_per_kcycle / 1000.0
    drafts: list[FabricSession] = []
    for src_index, src in enumerate(hosts):
        degree = topology.degree(src)
        for port in range(degree, config.num_ports):
            t = 0.0
            while True:
                t += rng.exponential(1.0 / rate)
                arrival = int(t)
                if arrival >= horizon_cycles:
                    break
                # Uniform over the other host routers: draw an index into
                # the list with the source excluded, then skip past it.
                dst_index = int(rng.integers(len(hosts) - 1))
                if dst_index >= src_index:
                    dst_index += 1
                dst = hosts[dst_index]
                dst_degree = topology.degree(dst)
                out_port = dst_degree + int(
                    rng.integers(config.num_ports - dst_degree)
                )
                cls_name = _draw_class(churn, rng)
                spec = make_session_spec(
                    len(drafts),
                    port,
                    out_port,
                    arrival,
                    cls_name,
                    config,
                    churn,
                    rng,
                )
                drafts.append(FabricSession(src, dst, spec))
    drafts.sort(
        key=lambda fs: (
            fs.spec.arrival_cycle,
            fs.src_router,
            fs.spec.in_port,
            fs.spec.sid,
        )
    )
    for sid, fs in enumerate(drafts):
        fs.spec.sid = sid
    return drafts
