"""Control x campaign integration: side-channels, hashing, frontier, CLI."""

import dataclasses
import json
import math

import pytest

from repro.campaign import CampaignPlan, ResultStore, WorkloadSpec, run_campaign
from repro.campaign.plan import PointSpec
from repro.campaign.store import PAYLOAD_CHANNELS
from repro.cli import main
from repro.control import ControlConfig, RetryPolicy
from repro.control.experiments import (
    frontier_plan,
    reduce_frontier,
    run_frontier,
)
from repro.faults.models import FaultConfig
from repro.router import RouterConfig
from repro.sessions import ChurnConfig, SessionsSpec
from repro.sim import RunControl

CFG = RouterConfig(num_ports=4, vcs_per_link=64, candidate_levels=4)

CHURN = ChurnConfig(
    arrivals_per_kcycle=4.0,
    mean_hold_cycles=1_000.0,
    mix=(("cbr-low", 0.6), ("cbr-medium", 0.4)),
)

CONTROL = ControlConfig(retry=RetryPolicy(loss_rate=0.1))

FAULTS = FaultConfig(corruption_rate=0.01, credit_loss_rate=0.002)


def control_point(policy="adaptive", rate=4.0, seed=1, cycles=1_500,
                  control=CONTROL, faults=FAULTS):
    return PointSpec(
        config=CFG, arbiter="coa", scheme="siabp", target_load=0.15,
        seed=seed, workload=WorkloadSpec.cbr(), cycles=cycles,
        warmup_cycles=0,
        sessions=SessionsSpec(
            churn=dataclasses.replace(CHURN, arrivals_per_kcycle=rate),
            policy=policy,
            control=control,
        ),
        faults=faults,
    )


def artifact_bytes(root):
    return {
        f"{sub}/{p.name}": p.read_bytes()
        for sub in ("objects", "sessions", "control")
        for p in root.glob(f"{sub}/*/*.json")
    }


class TestPointSpecHashing:
    def test_control_and_faults_dimensions_change_key(self):
        base = control_point()
        assert base.key() == control_point().key()
        assert base.key() != control_point(control=None).key()
        assert base.key() != control_point(faults=None).key()
        assert base.key() != control_point(
            control=ControlConfig(retry=RetryPolicy(loss_rate=0.2))
        ).key()
        assert base.key() != control_point(
            faults=FaultConfig(dead_port=1)
        ).key()

    def test_plain_point_dict_has_no_new_keys(self):
        # Pre-control artifact hashes must stay reachable: a point
        # without control/faults serializes exactly as it used to.
        plain = control_point(control=None, faults=None)
        assert "faults" not in plain.to_dict()
        assert "control" not in plain.to_dict()["sessions"]

    def test_roundtrip_preserves_control_and_faults(self):
        spec = control_point()
        again = PointSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert again.key() == spec.key()

    def test_describe_mentions_faults(self):
        assert "faults" in control_point().describe()
        assert "faults" not in control_point(faults=None).describe()


class TestStoreChannels:
    def test_channels_share_layout_and_shape(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" + "0" * 62
        for channel in PAYLOAD_CHANNELS:
            path = store.put_payload(channel, key, {"x": channel})
            assert path == tmp_path / channel / "ab" / f"{key}.json"
            assert store.get_payload(channel, key) == {"x": channel}
            body = json.loads(path.read_text())
            assert body == {"key": key, channel: {"x": channel}}

    def test_unknown_channel_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError):
            store.put_payload("bogus", "ab" + "0" * 62, {})

    def test_corrupt_channel_artifact_is_dropped(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" + "0" * 62
        path = store.put_payload("control", key, {"x": 1})
        path.write_text("{not json")
        assert store.get_payload("control", key) is None
        assert store.corrupt_dropped == 1

    def test_legacy_wrappers_route_through_channels(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ef" + "0" * 62
        store.put_telemetry(key, {"t": 1})
        store.put_sessions(key, {"s": 2})
        assert store.get_payload("telemetry", key) == {"t": 1}
        assert store.get_payload("sessions", key) == {"s": 2}
        assert store.telemetry_path_for(key) == store.channel_path_for(
            "telemetry", key
        )


class TestCampaignControlChannel:
    def test_outcomes_carry_control_payload(self, tmp_path):
        plan = CampaignPlan("c", (control_point(),))
        result = run_campaign(plan, store=ResultStore(tmp_path),
                              progress=False)
        payload = result.outcomes[0].control
        assert payload is not None
        assert payload["schema"] == "repro-control-v1"
        assert payload["pressure_series"]
        assert "setup_retries" in payload["signaling"]

    def test_disabled_point_has_no_control_payload(self):
        plan = CampaignPlan("c", (control_point(control=None),))
        result = run_campaign(plan, progress=False)
        assert result.outcomes[0].control is None
        assert result.outcomes[0].sessions is not None

    def test_cache_hit_restores_control_payload(self, tmp_path):
        store = ResultStore(tmp_path)
        plan = CampaignPlan("c", (control_point(),))
        first = run_campaign(plan, store=store, progress=False)
        second = run_campaign(plan, store=store, progress=False)
        assert second.hits == 1
        assert second.outcomes[0].control == first.outcomes[0].control

    def test_missing_control_artifact_forces_recompute(self, tmp_path):
        store = ResultStore(tmp_path)
        plan = CampaignPlan("c", (control_point(),))
        first = run_campaign(plan, store=store, progress=False)
        key = plan.points[0].key()
        store.channel_path_for("control", key).unlink()
        second = run_campaign(plan, store=store, progress=False)
        assert second.hits == 0
        assert second.outcomes[0].control == first.outcomes[0].control

    def test_parallel_and_serial_artifacts_byte_identical(self, tmp_path):
        plan = CampaignPlan(
            "c",
            (control_point(seed=1), control_point(seed=2),
             control_point(policy="paper", rate=8.0)),
        )
        serial_store, pool_store = tmp_path / "a", tmp_path / "b"
        serial = run_campaign(plan, jobs=1, store=ResultStore(serial_store),
                              progress=False)
        pooled = run_campaign(plan, jobs=2, store=ResultStore(pool_store),
                              progress=False)
        assert artifact_bytes(serial_store) == artifact_bytes(pool_store)
        for a, b in zip(serial.outcomes, pooled.outcomes):
            assert a.control == b.control


class TestFrontier:
    def test_frontier_reduces_policy_rate_cells(self, tmp_path):
        plan = frontier_plan(
            "f", CFG, [2.0, 6.0], ("paper", "adaptive"), seeds=(0, 1),
            control=RunControl(cycles=1_500, warmup_cycles=0),
        )
        assert len(plan) == 8
        result, points = run_frontier(plan, store=ResultStore(tmp_path))
        assert len(points) == 4
        for p in points:
            assert p.seeds == 2
            assert p.offered > 0
            assert p.policy in ("paper", "adaptive")
            assert p.blocked_cac >= 0 and p.blocked_timeout >= 0
            assert math.isfinite(p.violation_rate_per_kcycle)
            d = p.to_dict()
            assert d["offered"] == p.offered

    def test_reduce_rejects_disabled_outcomes(self):
        plan = CampaignPlan("c", (control_point(control=None),))
        result = run_campaign(plan, progress=False)
        with pytest.raises(ValueError):
            reduce_frontier(result)

    def test_plan_validates_inputs(self):
        with pytest.raises(ValueError):
            frontier_plan("x", CFG, [], ("paper",))
        with pytest.raises(ValueError):
            frontier_plan("x", CFG, [2.0], ())


class TestControlBench:
    def test_bench_report_gates_and_serializes(self, tmp_path):
        from repro.control.bench import (
            check_control_overhead,
            run_control_bench,
            write_control_report,
        )

        report = run_control_bench(
            ports=4, vcs=32, levels=4, cycles=1_200, repeats=2
        )
        assert report.disabled_identical
        assert report.faulty_disabled_identical
        assert report.replay_identical
        path = write_control_report(report, tmp_path / "bench.json")
        data = json.loads(path.read_text())
        assert data["faulty_disabled_identical"] is True
        ok, message = check_control_overhead(report, max_disabled=1.0,
                                             max_enabled=1.0)
        assert ok, message

    def test_gate_fails_on_identity_divergence(self):
        from repro.control.bench import (
            check_control_overhead,
            run_control_bench,
        )

        report = run_control_bench(
            ports=4, vcs=32, levels=4, cycles=600, repeats=1
        )
        report.faulty_disabled_identical = False
        ok, message = check_control_overhead(report, max_disabled=1.0,
                                             max_enabled=1.0)
        assert not ok and "faulty" in message


class TestControlCli:
    ARGS = ["--ports", "4", "--vcs", "64", "--cycles", "1500"]

    def test_default_run_prints_summary(self, capsys):
        assert main(["control", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "closed-loop control run" in out
        assert "violation rate" in out
        assert "pressure band" in out

    def test_check_determinism_passes(self, capsys):
        assert main(["control", *self.ARGS, "--check-determinism"]) == 0
        assert "deterministic" in capsys.readouterr().out

    def test_demo_renders_frontier_table(self, tmp_path, capsys):
        args = ["control", *self.ARGS, "--demo",
                "--rates", "2,4,6", "--policies", "paper,adaptive",
                "--seeds", "0,1", "--store", str(tmp_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "blocking vs delivered QoS" in out
        assert "viol/kcyc" in out
        # Second invocation is served from the store.
        assert main(args) == 0
        assert "(12 cached / 12 points)" in capsys.readouterr().out

    def test_demo_rejects_thin_grids(self, capsys):
        assert main(["control", "--demo", "--rates", "2,4",
                     "--policies", "paper,adaptive"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bench_writes_report(self, tmp_path, capsys):
        path = tmp_path / "BENCH_control.json"
        # Tiny run: loosen the noise-dominated timing gates; the
        # identity/replay gates are what this test pins.
        assert main(["control", "--ports", "4", "--vcs", "32",
                     "--bench", "--cycles", "800", "--repeats", "1",
                     "--max-disabled-overhead", "0.5",
                     "--max-enabled-overhead", "0.5",
                     "--json", str(path)]) == 0
        assert json.loads(path.read_text())["replay_identical"] is True
        assert "control overhead OK" in capsys.readouterr().out
