"""Traffic-source abstractions.

A traffic source describes *when* a connection generates flits.  Because
every source in the paper's evaluation is an open-loop process (CBR
clocks, MPEG frame boundaries, Poisson arrivals), sources precompute their
whole injection schedule for a simulation horizon instead of being polled
every cycle; the simulator then merges the schedules per input port and
feeds the NICs with a single moving pointer — O(total flits), not
O(connections x cycles).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["InjectionSchedule", "TrafficSource"]


@dataclass(frozen=True)
class InjectionSchedule:
    """All flits one connection injects within a horizon.

    Arrays share length; ``cycles`` is non-decreasing.  ``frame_ids`` is
    -1 for flits outside application frames (CBR, best-effort);
    ``frame_last`` marks the final flit of each application frame (frame
    delay is measured on it, per the paper).
    """

    cycles: np.ndarray
    frame_ids: np.ndarray
    frame_last: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.cycles)
        if len(self.frame_ids) != n or len(self.frame_last) != n:
            raise ValueError("schedule arrays must share length")
        if n and (np.diff(self.cycles) < 0).any():
            raise ValueError("injection cycles must be non-decreasing")

    def __len__(self) -> int:
        return len(self.cycles)

    @property
    def num_flits(self) -> int:
        return len(self.cycles)

    def offered_flits_until(self, cycle: int) -> int:
        """Flits generated strictly before ``cycle``."""
        return int(np.searchsorted(self.cycles, cycle, side="left"))

    def mean_load(self, horizon: int) -> float:
        """Average injection rate over the horizon, in flits per cycle."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return self.offered_flits_until(horizon) / horizon

    @staticmethod
    def empty() -> "InjectionSchedule":
        z = np.zeros(0, dtype=np.int64)
        return InjectionSchedule(z, z.copy(), np.zeros(0, dtype=bool))


class TrafficSource(abc.ABC):
    """Generates an :class:`InjectionSchedule` for a horizon."""

    #: Display name of the source kind.
    name: str = "source"

    @abc.abstractmethod
    def schedule(self, horizon: int, rng: np.random.Generator) -> InjectionSchedule:
        """Injection schedule covering cycles ``[0, horizon)``."""

    @abc.abstractmethod
    def mean_load(self) -> float:
        """Long-run average load in flits per cycle (fraction of a link)."""
