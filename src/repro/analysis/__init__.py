"""Post-processing: statistics, saturation detection, table rendering."""

from .blocking import (
    BlockingPoint,
    erlang_b,
    kaufman_roberts,
    kaufman_roberts_aggregate,
    render_blocking_table,
)
from .fairness import jain_index, normalized_service, worst_case_gps_lag
from .plots import render_xy_plot
from .saturation import knee_by_deficit, knee_by_delay, saturation_gap
from .stats import MeanCI, geometric_mean, mean_ci, relative_gap, wilson_interval
from .tables import render_series, render_table, sparkline
from .theory import (
    KAROL_HLUCHYJ_TABLE,
    fresh_uniform_matching_limit,
    hol_asymptote,
    karol_hluchyj_limit,
)

__all__ = [
    "BlockingPoint",
    "erlang_b",
    "kaufman_roberts",
    "kaufman_roberts_aggregate",
    "render_blocking_table",
    "jain_index",
    "normalized_service",
    "worst_case_gps_lag",
    "wilson_interval",
    "render_xy_plot",
    "knee_by_deficit",
    "knee_by_delay",
    "saturation_gap",
    "MeanCI",
    "geometric_mean",
    "mean_ci",
    "relative_gap",
    "render_series",
    "render_table",
    "sparkline",
    "KAROL_HLUCHYJ_TABLE",
    "fresh_uniform_matching_limit",
    "hol_asymptote",
    "karol_hluchyj_limit",
]
