"""Deterministic session generators: who arrives, when, for how long.

The paper pins every connection at cycle 0 ("all the connections are
considered to be active throughout all the simulation time"); this module
generates the missing dimension — a *churn timeline* of sessions that
arrive as a per-port Poisson process, hold for an exponentially or
Pareto-distributed time, and carry one of the repo's traffic classes
(the §5 CBR rate classes, MPEG-2 VBR streams, or best-effort background).

Everything is precomputed before the simulation loop starts, from the
dedicated ``sessions`` RNG role of :class:`~repro.sim.engine.RngStreams`:
arrival instants, destinations, holding times, each session's complete
injection schedule, and (for VBR) its per-GOP peak renegotiation plan.
The cycle loop itself consumes no randomness for session handling, which
is what makes churn runs byte-replayable and zero-churn runs bit-identical
to static runs (no stream advances at all when the timeline is empty).

Holding times are clocked from *admission* (not arrival): a session that
is admitted at cycle ``t`` injects for ``hold_cycles`` and then departs —
the Erlang loss model; blocked sessions are lost, never retried.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..router.config import RouterConfig
from ..router.connection import TrafficClass
from ..traffic.besteffort import BestEffortSource
from ..traffic.cbr import CBR_CLASSES, CBRSource
from ..traffic.mpeg import GOP_LENGTH, SEQUENCE_STATS, generate_trace
from ..traffic.vbr import VBRSource, trace_to_flits

__all__ = [
    "SESSION_CLASSES",
    "ChurnConfig",
    "SessionSpec",
    "generate_timeline",
    "make_session_spec",
]

#: Session class names accepted in a churn mix.  ``cbr-*`` map onto the
#: paper's §5 CBR rate classes, ``vbr`` onto random Table-1 MPEG-2
#: streams, ``best-effort`` onto Poisson background packets.
SESSION_CLASSES = ("cbr-low", "cbr-medium", "cbr-high", "vbr", "best-effort")

_HOLD_DISTS = ("exponential", "pareto")


@dataclass(frozen=True)
class ChurnConfig:
    """Churn process parameters (plain data, hashable, JSON round-trip).

    ``arrivals_per_kcycle`` is the Poisson arrival rate per input port in
    sessions per 1000 flit cycles; with ``mean_hold_cycles`` it fixes the
    offered session load ``arrivals_per_kcycle / 1000 * mean_hold_cycles``
    erlangs per port — the x-axis of the blocking-probability figures.
    """

    arrivals_per_kcycle: float = 2.0
    mean_hold_cycles: float = 4_000.0
    hold_dist: str = "exponential"
    #: Pareto tail index (heavier tail as it approaches 1; must be > 1
    #: so the mean exists).
    pareto_shape: float = 1.5
    min_hold_cycles: int = 200
    #: (class name, weight) draw mix; order matters for the RNG stream.
    mix: tuple[tuple[str, float], ...] = (
        ("cbr-low", 0.5),
        ("cbr-medium", 0.35),
        ("best-effort", 0.15),
    )
    #: Offered load of one best-effort session (link fraction).
    best_effort_load: float = 0.02
    #: VBR stream shaping (matches the static builder's scaled knobs).
    vbr_frame_time_cycles: int = 500
    vbr_bandwidth_scale: float = 8.0
    #: Renegotiate VBR peak reservations at GOP boundaries.
    renegotiate: bool = True

    def __post_init__(self) -> None:
        if self.arrivals_per_kcycle < 0:
            raise ValueError("arrivals_per_kcycle must be >= 0")
        if self.mean_hold_cycles <= 0:
            raise ValueError("mean_hold_cycles must be positive")
        if self.hold_dist not in _HOLD_DISTS:
            raise ValueError(f"hold_dist must be one of {_HOLD_DISTS}")
        if self.pareto_shape <= 1.0:
            raise ValueError("pareto_shape must be > 1 (finite mean)")
        if self.min_hold_cycles < 1:
            raise ValueError("min_hold_cycles must be >= 1")
        if not self.mix:
            raise ValueError("mix must not be empty")
        mix = tuple((str(n), float(w)) for n, w in self.mix)
        for name, weight in mix:
            if name not in SESSION_CLASSES:
                raise ValueError(
                    f"unknown session class {name!r}; known: {SESSION_CLASSES}"
                )
            if weight < 0:
                raise ValueError("mix weights must be >= 0")
        if sum(w for _n, w in mix) <= 0:
            raise ValueError("mix weights must sum to > 0")
        object.__setattr__(self, "mix", mix)
        if not (0 < self.best_effort_load < 1):
            raise ValueError("best_effort_load must be in (0, 1)")
        if self.vbr_frame_time_cycles <= 0:
            raise ValueError("vbr_frame_time_cycles must be positive")
        if self.vbr_bandwidth_scale <= 0:
            raise ValueError("vbr_bandwidth_scale must be positive")

    @property
    def offered_erlangs_per_port(self) -> float:
        """Nominal offered session load per input port, in erlangs."""
        return self.arrivals_per_kcycle / 1000.0 * self.mean_hold_cycles

    def to_dict(self) -> dict[str, Any]:
        return {
            "arrivals_per_kcycle": self.arrivals_per_kcycle,
            "mean_hold_cycles": self.mean_hold_cycles,
            "hold_dist": self.hold_dist,
            "pareto_shape": self.pareto_shape,
            "min_hold_cycles": self.min_hold_cycles,
            "mix": [[name, weight] for name, weight in self.mix],
            "best_effort_load": self.best_effort_load,
            "vbr_frame_time_cycles": self.vbr_frame_time_cycles,
            "vbr_bandwidth_scale": self.vbr_bandwidth_scale,
            "renegotiate": self.renegotiate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChurnConfig":
        fields = dict(data)
        fields["mix"] = tuple((n, w) for n, w in fields.get("mix", cls().mix))
        return cls(**fields)


@dataclass
class SessionSpec:
    """One precomputed session: identity, reservation, schedule, plans.

    ``cycles``/``frame_ids``/``frame_last`` are the injection schedule
    *relative to the admission instant* over ``[0, hold_cycles)``; the
    engine offsets them when (and only if) the session is admitted.
    ``reneg_plan`` is likewise admission-relative: (cycle, new peak
    slots) pairs at GOP boundaries.
    """

    sid: int
    in_port: int
    out_port: int
    cls_name: str
    traffic_class: TrafficClass
    avg_slots: int
    peak_slots: int
    arrival_cycle: int
    hold_cycles: int
    mean_load: float
    cycles: np.ndarray
    frame_ids: np.ndarray
    frame_last: np.ndarray
    reneg_plan: tuple[tuple[int, int], ...] = field(default=())


def _draw_hold(churn: ChurnConfig, rng: np.random.Generator) -> int:
    if churn.hold_dist == "exponential":
        draw = rng.exponential(churn.mean_hold_cycles)
    else:  # pareto: scaled so the mean equals mean_hold_cycles
        a = churn.pareto_shape
        draw = rng.pareto(a) * churn.mean_hold_cycles * (a - 1.0)
    return max(churn.min_hold_cycles, int(draw))


def _draw_class(
    churn: ChurnConfig, rng: np.random.Generator
) -> str:
    weights = np.array([w for _n, w in churn.mix], dtype=np.float64)
    weights /= weights.sum()
    return churn.mix[int(rng.choice(len(weights), p=weights))][0]


def _gop_peaks(
    flits: np.ndarray, frame_time_cycles: int, round_cycles: int, avg_slots: int
) -> list[int]:
    """Per-GOP peak reservation (slots/round) over a rolled frame trace."""
    n_gops = max(1, math.ceil(len(flits) / GOP_LENGTH))
    peaks = []
    for g in range(n_gops):
        window = flits[g * GOP_LENGTH : (g + 1) * GOP_LENGTH]
        peak_load = float(window.max()) / frame_time_cycles
        peaks.append(max(avg_slots, round(peak_load * round_cycles)))
    return peaks


def _make_vbr(
    spec_args: dict[str, Any],
    config: RouterConfig,
    churn: ChurnConfig,
    hold: int,
    rng: np.random.Generator,
) -> SessionSpec:
    name = list(SEQUENCE_STATS)[int(rng.integers(len(SEQUENCE_STATS)))]
    frame_time = churn.vbr_frame_time_cycles
    num_gops = max(1, math.ceil(hold / (GOP_LENGTH * frame_time)))
    trace_bits = generate_trace(SEQUENCE_STATS[name], num_gops, rng)
    flits = trace_to_flits(
        trace_bits, config, frame_time, churn.vbr_bandwidth_scale
    )
    rot = int(rng.integers(GOP_LENGTH))
    flits = np.roll(flits, -rot)
    mean_load = float(flits.mean()) / frame_time
    avg_slots = max(1, round(mean_load * config.round_cycles))
    gop_peaks = _gop_peaks(flits, frame_time, config.round_cycles, avg_slots)
    source = VBRSource(
        flits,
        frame_time,
        model="SR",
        phase_cycles=int(rng.integers(frame_time)),
    )
    sched = source.schedule(hold, rng)
    # The session is admitted at its first GOP's peak and renegotiates at
    # every subsequent GOP boundary (the concurrency-factor test reruns
    # per §2); with renegotiation off it reserves the global peak for its
    # whole lifetime, like the static workloads do.
    if churn.renegotiate and len(gop_peaks) > 1:
        peak_slots = gop_peaks[0]
        gop_cycles = GOP_LENGTH * frame_time
        plan = tuple(
            (g * gop_cycles, gop_peaks[g])
            for g in range(1, len(gop_peaks))
            if g * gop_cycles < hold and gop_peaks[g] != gop_peaks[g - 1]
        )
    else:
        peak_slots = max(gop_peaks)
        plan = ()
    return SessionSpec(
        cls_name="vbr",
        traffic_class=TrafficClass.VBR,
        avg_slots=avg_slots,
        peak_slots=peak_slots,
        mean_load=mean_load,
        cycles=sched.cycles,
        frame_ids=sched.frame_ids,
        frame_last=sched.frame_last,
        reneg_plan=plan,
        **spec_args,
    )


def _make_session(
    sid: int,
    in_port: int,
    arrival: int,
    cls_name: str,
    config: RouterConfig,
    churn: ChurnConfig,
    rng: np.random.Generator,
) -> SessionSpec:
    out_port = int(rng.integers(config.num_ports))
    return make_session_spec(
        sid, in_port, out_port, arrival, cls_name, config, churn, rng
    )


def make_session_spec(
    sid: int,
    in_port: int,
    out_port: int,
    arrival: int,
    cls_name: str,
    config: RouterConfig,
    churn: ChurnConfig,
    rng: np.random.Generator,
) -> SessionSpec:
    """Build one session body for explicit endpoints.

    This is the endpoint-generalised core of the churn generator: the
    single-router timeline draws ``out_port`` itself, while the fabric
    timeline picks (router, port) endpoints across a topology and passes
    the ports in.  Everything after the endpoint choice (holding time,
    class body, injection schedule) draws from ``rng`` in a fixed order.
    """
    hold = _draw_hold(churn, rng)
    spec_args: dict[str, Any] = {
        "sid": sid,
        "in_port": in_port,
        "out_port": out_port,
        "arrival_cycle": arrival,
        "hold_cycles": hold,
    }
    if cls_name == "vbr":
        return _make_vbr(spec_args, config, churn, hold, rng)
    if cls_name == "best-effort":
        source = BestEffortSource(churn.best_effort_load)
        sched = source.schedule(hold, rng)
        return SessionSpec(
            cls_name=cls_name,
            traffic_class=TrafficClass.BEST_EFFORT,
            avg_slots=1,
            peak_slots=1,
            mean_load=source.mean_load(),
            cycles=sched.cycles,
            frame_ids=sched.frame_ids,
            frame_last=sched.frame_last,
            **spec_args,
        )
    cbr = CBRSource.from_class(config, cls_name.removeprefix("cbr-"), rng)
    slots = config.rate_to_slots(cbr.rate_bps)
    sched = cbr.schedule(hold, rng)
    return SessionSpec(
        cls_name=cls_name,
        traffic_class=TrafficClass.CBR,
        avg_slots=slots,
        peak_slots=slots,
        mean_load=cbr.mean_load(),
        cycles=sched.cycles,
        frame_ids=sched.frame_ids,
        frame_last=sched.frame_last,
        **spec_args,
    )


def generate_timeline(
    config: RouterConfig,
    churn: ChurnConfig,
    horizon_cycles: int,
    rng: np.random.Generator,
) -> list[SessionSpec]:
    """Generate the complete churn timeline for one run, sorted by arrival.

    Ports are processed in order, each with its own Poisson arrival
    process off the shared stream; a zero arrival rate draws nothing at
    all (the zero-churn bit-identity guarantee).  Session ids are
    assigned in arrival order after the merge, so logs read
    chronologically.
    """
    if horizon_cycles <= 0:
        raise ValueError("horizon_cycles must be positive")
    if churn.arrivals_per_kcycle == 0:
        return []
    rate = churn.arrivals_per_kcycle / 1000.0
    drafts: list[SessionSpec] = []
    for port in range(config.num_ports):
        t = 0.0
        order = 0
        while True:
            t += rng.exponential(1.0 / rate)
            arrival = int(t)
            if arrival >= horizon_cycles:
                break
            cls_name = _draw_class(churn, rng)
            drafts.append(
                _make_session(
                    len(drafts), port, arrival, cls_name, config, churn, rng
                )
            )
            order += 1
    drafts.sort(key=lambda s: (s.arrival_cycle, s.in_port, s.sid))
    for sid, spec in enumerate(drafts):
        spec.sid = sid
    return drafts
