#!/usr/bin/env python3
"""MPEG-2 video over the MMR: frame delay and jitter under SR and BB.

Reproduces the paper's §5.2 scenario at example scale: every input link
carries a bundle of MPEG-2 streams (synthetic traces with the paper's
IBBPBBPBBPBBPBB GOP and Table-1 statistics), injected either smoothly
(SR: a frame's flits spread over the whole 33 ms) or in bursts (BB: each
frame transmitted back-to-back at a shared peak rate).  For each injection
model and arbiter the script reports average frame delay (last-flit rule)
and adjacent-frame jitter — the QoS metrics an MPEG receiver cares about.

Run:  python examples/mpeg_vbr_qos.py
"""

from repro import RunControl, SingleRouterSim, default_config
from repro.analysis import render_table
from repro.traffic import build_vbr_workload

TARGET_LOAD = 0.70
FRAME_TIME_CYCLES = 1_500   # scaled 33 ms frame window (DESIGN.md §2)
NUM_GOPS = 2
SEED = 7


def main() -> None:
    config = default_config()
    cycles = FRAME_TIME_CYCLES * 15 * NUM_GOPS
    rows = []
    for model in ("SR", "BB"):
        for arbiter in ("coa", "wfa"):
            sim = SingleRouterSim(config, arbiter=arbiter, seed=SEED)
            workload = build_vbr_workload(
                sim.router,
                TARGET_LOAD,
                sim.rng.workload,
                model=model,
                frame_time_cycles=FRAME_TIME_CYCLES,
                bandwidth_scale=8.0,
                num_gops=NUM_GOPS,
            )
            result = sim.run(
                workload,
                RunControl(cycles=cycles, warmup_cycles=FRAME_TIME_CYCLES),
            )
            rows.append(
                [
                    model,
                    arbiter,
                    len(workload),
                    result.offered_load * 100,
                    result.utilization * 100,
                    result.overall_frame_delay_us,
                    result.overall_jitter_us,
                ]
            )

    print(
        render_table(
            ["model", "arbiter", "streams", "load %", "util %",
             "frame delay us", "jitter us"],
            rows,
            title=f"MPEG-2 VBR at {TARGET_LOAD:.0%} generated load "
                  f"({NUM_GOPS} GOPs per stream)",
        )
    )
    print(
        "\nJitter stays microseconds-scale — far inside the milliseconds an "
        "MPEG-2 receiver can absorb (paper §5.2) — and BB's bursts cost "
        "extra frame delay versus SR, as in the paper's Fig. 9."
    )


if __name__ == "__main__":
    main()
