"""Tests for repro.network (multi-router extension, paper §6)."""

import numpy as np
import pytest

from repro.network import MultiRouterNetwork, Topology, from_edges, mesh, ring
from repro.router import RouterConfig, TrafficClass


def make_config(**kw) -> RouterConfig:
    base = dict(num_ports=6, vcs_per_link=8, vc_buffer_depth=2,
                candidate_levels=4, flit_cycles_per_round=800)
    base.update(kw)
    return RouterConfig(**base)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestTopology:
    def test_mesh_shape(self):
        topo = mesh(2, 3)
        assert topo.num_routers == 6
        # Corner node 0 connects to 1 (right) and 3 (down).
        assert topo.neighbors(0) == [1, 3]
        assert topo.degree(0) == 2
        # Middle node 1 connects to 0, 2, 4.
        assert topo.degree(1) == 3
        assert topo.max_degree() == 3

    def test_mesh_validation(self):
        with pytest.raises(ValueError):
            mesh(0, 3)

    def test_ring(self):
        topo = ring(4)
        assert topo.degree(0) == 2
        assert set(topo.neighbors(0)) == {1, 3}
        two_ring = ring(2)
        assert two_ring.degree(0) == 1
        with pytest.raises(ValueError):
            ring(1)

    def test_shortest_path_deterministic(self):
        topo = mesh(2, 2)
        path = topo.shortest_path(0, 3)
        assert path in ([0, 1, 3], [0, 2, 3])
        assert topo.shortest_path(0, 3) == path  # stable
        assert topo.shortest_path(2, 2) == [2]

    def test_no_path_raises(self):
        topo = from_edges(3, [(0, 1)])  # router 2 isolated
        with pytest.raises(ValueError):
            topo.shortest_path(0, 2)

    def test_port_map_is_symmetric_link_indexing(self):
        topo = ring(3)
        for u, v in topo.edges:
            port = topo.port_toward(u, v)
            assert 0 <= port < topo.degree(u)
        with pytest.raises(ValueError):
            topo.port_toward(0, 0)

    def test_rejects_self_loops_and_range(self):
        with pytest.raises(ValueError):
            Topology(2, ((0, 0),), {})
        with pytest.raises(ValueError):
            Topology(2, ((0, 5),), {})


class TestMultiRouterNetwork:
    def test_needs_host_ports(self):
        with pytest.raises(ValueError, match="host ports"):
            MultiRouterNetwork(mesh(2, 2), make_config(num_ports=2))

    def test_establish_reserves_every_hop(self):
        net = MultiRouterNetwork(ring(4), make_config())
        conn = net.establish(0, 2, TrafficClass.CBR, avg_slots=10)
        assert conn is not None
        assert conn.router_path[0] == 0
        assert conn.router_path[-1] == 2
        assert conn.num_hops == len(conn.router_path)
        for hop_router, hop in zip(conn.router_path, conn.hops):
            assert net.routers[hop_router].table.get(hop.conn_id) is hop

    def test_establish_rolls_back_on_rejection(self):
        config = make_config(flit_cycles_per_round=800)
        net = MultiRouterNetwork(ring(4), config)
        # Saturate the 1 -> 2 link through a first connection.
        first = net.establish(1, 2, TrafficClass.CBR, avg_slots=800)
        assert first is not None
        # 0 -> 2 via 1 must fail at the second hop and roll back hop one.
        blocked = net.establish(0, 2, TrafficClass.CBR, avg_slots=10)
        if blocked is not None:
            # The ring has two shortest paths only for even sizes with
            # equal length; if routed the other way (0-3-2) it may pass.
            assert 1 not in blocked.router_path[1:-1]
        else:
            # Rolled back: router 0's reservation must be gone.
            assert net.routers[0].admission.reserved_avg_load(
                net.first_host_port(0)
            ) == 0.0

    def test_single_flit_end_to_end(self):
        net = MultiRouterNetwork(mesh(1, 3), make_config())
        conn = net.establish(0, 2, TrafficClass.CBR, avg_slots=10)
        assert conn is not None
        net.inject(conn, gen_cycle=0)
        generator = rng(1)
        net.run(30, generator)
        assert net.delivered == 1
        assert net.total_buffered() == 0
        # Three routers: at least one cycle in each + links.
        assert net.end_to_end_delay.mean >= 3

    def test_conservation_under_load(self):
        net = MultiRouterNetwork(ring(4), make_config())
        conns = []
        for src in range(4):
            conn = net.establish(src, (src + 2) % 4, TrafficClass.CBR,
                                 avg_slots=50)
            assert conn is not None
            conns.append(conn)
        generator = rng(2)
        injected = 0
        for t in range(200):
            for conn in conns:
                if generator.random() < 0.3:
                    net.inject(conn, gen_cycle=t)
                    injected += 1
            net.step(t, generator)
        # Drain.
        t = 200
        while net.total_buffered() > 0:
            net.step(t, generator)
            t += 1
            assert t < 20_000, "network failed to drain"
        assert net.delivered == injected

    def test_link_credits_bound_downstream_buffers(self):
        config = make_config(vc_buffer_depth=2)
        net = MultiRouterNetwork(mesh(1, 2), config)
        conn = net.establish(0, 1, TrafficClass.CBR, avg_slots=10)
        assert conn is not None
        for _ in range(12):
            net.inject(conn, gen_cycle=0)
        generator = rng(3)
        for t in range(6):
            net.step(t, generator)
            # The downstream VC buffer never exceeds its depth.
            hop = conn.hops[1]
            occ = net.routers[1].vc_memory.occupancy_of(hop.in_port, hop.vc)
            assert occ <= config.vc_buffer_depth

    def test_multiple_connections_share_links_fairly(self):
        net = MultiRouterNetwork(mesh(1, 3), make_config())
        a = net.establish(0, 2, TrafficClass.CBR, avg_slots=100)
        b = net.establish(1, 2, TrafficClass.CBR, avg_slots=100)
        assert a is not None and b is not None
        generator = rng(4)
        for t in range(300):
            if t < 150:
                net.inject(a, gen_cycle=t)
                net.inject(b, gen_cycle=t)
            net.step(t, generator)
        # Both connections deliver; the shared 1->2 link serializes them.
        assert net.delivered > 200
        assert net.end_to_end_delay.max < 400
