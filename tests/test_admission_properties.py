"""Hypothesis property tests for admission control.

Invariant: under any sequence of admissions and releases, (a) committed
average reservations never exceed the round on any link, (b) committed
VBR peaks never exceed round x concurrency, and (c) releasing everything
returns the controller to a pristine state.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.router.admission import AdmissionController
from repro.router.config import RouterConfig
from repro.router.connection import Connection, TrafficClass

CONFIG = RouterConfig(
    num_ports=3,
    vcs_per_link=64,
    candidate_levels=1,
    flit_cycles_per_round=64 * 4,
    concurrency_factor=3.0,
)
ROUND = CONFIG.round_cycles


@st.composite
def requests(draw):
    tclass = draw(st.sampled_from(list(TrafficClass)))
    avg = draw(st.integers(1, ROUND))
    if tclass is TrafficClass.VBR:
        peak = draw(st.integers(avg, int(ROUND * CONFIG.concurrency_factor)))
    else:
        peak = avg
    return (
        tclass,
        avg,
        peak,
        draw(st.integers(0, CONFIG.num_ports - 1)),
        draw(st.integers(0, CONFIG.num_ports - 1)),
    )


@settings(max_examples=80, deadline=None)
@given(ops=st.lists(requests(), min_size=1, max_size=60),
       release_mask=st.lists(st.booleans(), min_size=60, max_size=60))
def test_admission_never_overcommits(ops, release_mask):
    ac = AdmissionController(CONFIG)
    committed: list[Connection] = []
    next_id = 0
    for i, (tclass, avg, peak, in_port, out_port) in enumerate(ops):
        conn = Connection(next_id, in_port, 0, out_port, tclass, avg, peak)
        decision = ac.check(conn)
        if decision:
            ac.commit(conn)
            committed.append(conn)
            next_id += 1
        # Occasionally release an old reservation.
        if committed and release_mask[i % len(release_mask)]:
            ac.release(committed.pop(0))

        # Invariants over the *currently committed* set, per link.
        for port in range(CONFIG.num_ports):
            avg_in = sum(c.avg_slots for c in committed
                         if c.in_port == port and c.is_reserved)
            avg_out = sum(c.avg_slots for c in committed
                          if c.out_port == port and c.is_reserved)
            assert avg_in <= ROUND
            assert avg_out <= ROUND
            peak_in = sum(c.peak_slots for c in committed
                          if c.in_port == port
                          and c.traffic_class is TrafficClass.VBR)
            assert peak_in <= ROUND * CONFIG.concurrency_factor
            # Controller's own accounting agrees with the ground truth.
            assert ac.reserved_avg_load(port) * ROUND == avg_in

    # Release everything: pristine state, a full-round request fits again.
    for conn in committed:
        ac.release(conn)
    probe = Connection(99_999, 0, 1, 1, TrafficClass.CBR, ROUND, ROUND)
    assert ac.check(probe)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_check_never_mutates(seed):
    """check() must be side-effect free regardless of outcome."""
    rng = np.random.default_rng(seed)
    ac = AdmissionController(CONFIG)
    baseline = Connection(0, 0, 0, 1, TrafficClass.CBR, ROUND // 2, ROUND // 2)
    ac.commit(baseline)
    before = [ac.reserved_avg_load(p) for p in range(CONFIG.num_ports)]
    for i in range(10):
        conn = Connection(
            i + 1, int(rng.integers(3)), 0, int(rng.integers(3)),
            TrafficClass.VBR, int(rng.integers(1, ROUND + 1)),
            int(rng.integers(ROUND, 3 * ROUND + 1)),
        )
        ac.check(conn)
    after = [ac.reserved_avg_load(p) for p in range(CONFIG.num_ports)]
    assert before == after
