"""Fair-queueing scheduler family: the cross-paradigm baselines.

The paper evaluates its biased-priority schemes (IABP/SIABP + COA) only
against priority-blind matchers (WFA/iSLIP/PIM).  This package adds the
dominant QoS-scheduling lineage — fair queueing — to the MMR:

* :class:`~repro.fq.gps.GpsFluid` — the exact fluid GPS reference
  (per-flow service curves computed analytically, the fairness ground
  truth; never run per-cycle).
* :class:`~repro.fq.schemes.WFQ` — packetized GPS: VCs ranked by
  virtual finish tag under a start-time virtual clock.
* :class:`~repro.fq.schemes.DRR` — deficit round-robin with per-VC
  quantum/deficit counters (Shreedhar–Varghese).
* :class:`~repro.fq.schemes.MCDRR` — multi-channel DRR: deficit service
  round-robined across the crossbar's output channels (PAPERS.md:
  arXiv:1308.5092 / arXiv:1611.08647).

All three packetized schemes register in :mod:`repro.core.registry`
(names ``wfq`` / ``drr`` / ``mcdrr``), so every existing experiment,
campaign, fault, session, and control harness can name them.  The
comparison suite lives in :mod:`repro.fq.experiments` (imported lazily —
it pulls in the campaign machinery) and behind ``python -m repro fq``.
"""

from .gps import FluidFlow, GpsFluid, GpsResult
from .schemes import DRR, MCDRR, WFQ, WFQ_HORIZON, WFQ_SCALE

__all__ = [
    "FluidFlow",
    "GpsFluid",
    "GpsResult",
    "WFQ",
    "DRR",
    "MCDRR",
    "WFQ_SCALE",
    "WFQ_HORIZON",
]
