"""PIM — Parallel Iterative Matching (Anderson et al., 1993).

Baseline from the paper's related-work discussion (the paper notes the
WFA beats PIM on hardware complexity).  Each iteration:

* **Grant**: every unmatched output grants a *uniformly random* one of
  its unmatched requesting inputs.
* **Accept**: every input that received grants accepts a uniformly random
  one of them.

Randomization breaks grant/accept symmetry; with log2(N) + O(1) expected
iterations PIM converges to a maximal matching.  Priority-blind, like the
WFA and iSLIP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .matching import (
    Arbiter,
    Candidate,
    Grant,
    best_candidate_for,
    buffer_best_vc,
    buffer_request_matrix,
    request_matrix,
    restrict_levels,
)

if TYPE_CHECKING:
    from .candidates import CandidateBuffer

__all__ = ["PIM"]


class PIM(Arbiter):
    """Parallel Iterative Matching with configurable iteration count."""

    name = "pim"

    def __init__(
        self,
        num_ports: int,
        iterations: int | None = None,
        max_levels: int | None = 1,
    ) -> None:
        if max_levels is not None and max_levels <= 0:
            raise ValueError("max_levels must be positive or None")
        self.num_ports = num_ports
        self.iterations = iterations if iterations is not None else num_ports
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        self.max_levels = max_levels
        if max_levels is None:
            self.name = "pim[multi]"

    def match(
        self,
        candidates: Sequence[Sequence[Candidate]],
        rng: np.random.Generator,
    ) -> list[Grant]:
        n = self.num_ports
        candidates = restrict_levels(candidates, self.max_levels)
        in_matched = self._match_requests(request_matrix(candidates, n), rng)
        out: list[Grant] = []
        for i in range(n):
            j = int(in_matched[i])
            if j >= 0:
                cand = best_candidate_for(candidates, i, j)
                out.append((i, cand.vc, j))
        return out

    def match_buffer(
        self,
        buf: CandidateBuffer,
        rng: np.random.Generator,
    ) -> list[Grant]:
        """Buffer-native PIM; rng draws depend only on the request matrix.

        :func:`buffer_request_matrix` reproduces the object path's matrix
        exactly, so the grant/accept randomization consumes the stream
        identically and the matchings agree draw for draw.
        """
        n = self.num_ports
        requests = buffer_request_matrix(buf, n, self.max_levels)
        in_matched = self._match_requests(requests, rng)
        out: list[Grant] = []
        for i in range(n):
            j = int(in_matched[i])
            if j >= 0:
                out.append((i, buffer_best_vc(buf, i, j, self.max_levels), j))
        return out

    def _match_requests(
        self, requests: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Run the randomized grant/accept iterations; input -> output."""
        n = self.num_ports
        in_matched = np.full(n, -1, dtype=np.int64)
        out_matched = np.zeros(n, dtype=bool)

        for _ in range(self.iterations):
            grants_to: dict[int, list[int]] = {}
            for j in range(n):
                if out_matched[j]:
                    continue
                requesters = np.flatnonzero(requests[:, j] & (in_matched == -1))
                if requesters.size == 0:
                    continue
                i = int(requesters[int(rng.integers(requesters.size))])
                grants_to.setdefault(i, []).append(j)
            if not grants_to:
                break
            for i, outs in grants_to.items():
                j = outs[int(rng.integers(len(outs)))]
                in_matched[i] = j
                out_matched[j] = True
        return in_matched
