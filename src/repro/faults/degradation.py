"""Graceful QoS degradation under sustained faults.

The MMR's reason to exist is bounded delay/jitter for admitted
connections; when faults eat into the usable bandwidth, the router sheds
load in strict QoS order rather than degrading everyone equally:

* **level 0** — normal operation;
* **level 1** — best-effort traffic is shed (NIC stops injecting it);
  best-effort only ever got leftover bandwidth, so this frees capacity
  without touching any guarantee;
* **level 2** — VBR connections are clamped to their *average* (i.e.
  permanent) reservation, giving up the peak allowance the concurrency
  factor granted them.  Averages are still honoured, so VBR degrades
  softly (deeper NIC queueing at bursts) instead of failing;
* **CBR reservations are never touched** — they are the hard guarantees
  the admission test promised.

Escalation is driven by the observed fault rate over a sliding window;
structural faults (a dead link) impose a *floor* for as long as they
persist.  De-escalation requires a quiet period and steps down one level
at a time.  Every transition is recorded in the fault schedule.
"""

from __future__ import annotations

from collections import deque

from .models import FaultConfig, FaultKind
from .schedule import FaultSchedule

__all__ = [
    "LEVEL_NORMAL",
    "LEVEL_SHED_BEST_EFFORT",
    "LEVEL_CLAMP_VBR_PEAK",
    "DegradationPolicy",
]

LEVEL_NORMAL = 0
LEVEL_SHED_BEST_EFFORT = 1
LEVEL_CLAMP_VBR_PEAK = 2

_LEVEL_NAMES = {
    LEVEL_NORMAL: "normal",
    LEVEL_SHED_BEST_EFFORT: "shed-best-effort",
    LEVEL_CLAMP_VBR_PEAK: "clamp-vbr-peak",
}


class DegradationPolicy:
    """Tracks the fault rate and decides the current degradation level."""

    def __init__(self, config: FaultConfig, schedule: FaultSchedule) -> None:
        self.config = config
        self.schedule = schedule
        self.level = LEVEL_NORMAL
        self.max_level = LEVEL_NORMAL
        self.escalations = 0
        self._recent: deque[int] = deque()
        self._floor = LEVEL_NORMAL
        self._last_fault = -(10**9)
        self._last_change = 0
        #: Optional closed-loop recovery controller (``repro.control``):
        #: provides a pressure-driven escalation floor and replaces the
        #: fixed quiet-period de-escalation rule.  ``None`` keeps the
        #: legacy behavior bit-identical.
        self.controller = None

    # ------------------------------------------------------------------

    def note_fault(self, now: int) -> None:
        """Record one fault occurrence (drives the sliding-window rate)."""
        self._recent.append(now)
        self._last_fault = now

    def set_floor(self, level: int, now: int) -> None:
        """Impose a minimum level while a structural fault persists."""
        self._floor = level
        self._apply(max(self._target(now), level), now)

    def clear_floor(self, now: int) -> None:
        self._floor = LEVEL_NORMAL
        self.update(now)

    # ------------------------------------------------------------------

    def _target(self, now: int) -> int:
        cutoff = now - self.config.window
        recent = self._recent
        while recent and recent[0] < cutoff:
            recent.popleft()
        n = len(recent)
        if n >= self.config.clamp_vbr_faults:
            return LEVEL_CLAMP_VBR_PEAK
        if n >= self.config.shed_be_faults:
            return LEVEL_SHED_BEST_EFFORT
        return LEVEL_NORMAL

    def _apply(self, target: int, now: int) -> None:
        if target == self.level:
            return
        kind = FaultKind.DEGRADE if target > self.level else FaultKind.RESTORE
        if target > self.level:
            self.escalations += 1
        self.schedule.record(
            now,
            kind,
            f"level={target}",
            f"{_LEVEL_NAMES[self.level]} -> {_LEVEL_NAMES[target]}",
        )
        self.level = target
        self.max_level = max(self.max_level, target)
        self._last_change = now

    def update(self, now: int) -> int:
        """Advance the policy one cycle; returns the current level."""
        ctrl = self.controller
        target = max(self._target(now), self._floor)
        if ctrl is not None:
            target = max(target, ctrl.escalation_floor(now))
        if target > self.level:
            self._apply(target, now)
        elif target < self.level:
            # De-escalate one level at a time.  The closed-loop
            # controller, when attached, decides when pressure has
            # cleared; otherwise a fixed quiet period does.
            if ctrl is not None:
                if ctrl.may_recover(now, self._last_change):
                    self._apply(self.level - 1, now)
            else:
                quiet = now - max(self._last_fault, self._last_change)
                if quiet >= self.config.restore_after:
                    self._apply(self.level - 1, now)
        return self.level
