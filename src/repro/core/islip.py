"""iSLIP — iterative round-robin matching (McKeown).

Baseline from the paper's related-work discussion.  Each iteration runs
three phases over the boolean request matrix:

* **Request**: every unmatched input sends its pending requests.
* **Grant**: every unmatched output grants the requesting input that
  appears next at or after its grant pointer (round-robin).
* **Accept**: every input that received grants accepts the output that
  appears next at or after its accept pointer (round-robin).

Pointers advance (one past the matched partner) only when the grant is
accepted *in the first iteration* — the property that gives iSLIP its
"desynchronized pointers" 100 %-throughput behaviour under uniform
traffic.  Like the WFA, iSLIP is priority-blind: it maximizes matching
size and fairness but knows nothing of connection QoS.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .matching import (
    Arbiter,
    Candidate,
    Grant,
    best_candidate_for,
    buffer_best_vc,
    buffer_request_matrix,
    request_matrix,
    restrict_levels,
)

if TYPE_CHECKING:
    from .candidates import CandidateBuffer

__all__ = ["ISLIP"]


class ISLIP(Arbiter):
    """iSLIP with configurable iteration count (default: N iterations)."""

    name = "islip"

    def __init__(
        self,
        num_ports: int,
        iterations: int | None = None,
        max_levels: int | None = 1,
    ) -> None:
        if max_levels is not None and max_levels <= 0:
            raise ValueError("max_levels must be positive or None")
        self.num_ports = num_ports
        self.iterations = iterations if iterations is not None else num_ports
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        self.max_levels = max_levels
        if max_levels is None:
            self.name = "islip[multi]"
        self._grant_ptr = np.zeros(num_ports, dtype=np.int64)
        self._accept_ptr = np.zeros(num_ports, dtype=np.int64)

    def reset(self) -> None:
        self._grant_ptr[:] = 0
        self._accept_ptr[:] = 0

    @staticmethod
    def _rr_pick(choices: np.ndarray, pointer: int, n: int) -> int:
        """First element of ``choices`` at or after ``pointer`` (mod n)."""
        shifted = (choices - pointer) % n
        return int(choices[np.argmin(shifted)])

    def match(
        self,
        candidates: Sequence[Sequence[Candidate]],
        rng: np.random.Generator,
    ) -> list[Grant]:
        n = self.num_ports
        candidates = restrict_levels(candidates, self.max_levels)
        in_matched = self._match_requests(request_matrix(candidates, n))
        out: list[Grant] = []
        for i in range(n):
            j = int(in_matched[i])
            if j >= 0:
                cand = best_candidate_for(candidates, i, j)
                out.append((i, cand.vc, j))
        return out

    def match_buffer(
        self,
        buf: CandidateBuffer,
        rng: np.random.Generator,
    ) -> list[Grant]:
        """Buffer-native iSLIP: identical pointer trajectory to `match`.

        iSLIP is deterministic given the request matrix and the pointer
        state, and :func:`buffer_request_matrix` reproduces the object
        path's matrix exactly, so the two entry points stay in lockstep.
        """
        n = self.num_ports
        requests = buffer_request_matrix(buf, n, self.max_levels)
        in_matched = self._match_requests(requests)
        out: list[Grant] = []
        for i in range(n):
            j = int(in_matched[i])
            if j >= 0:
                out.append((i, buffer_best_vc(buf, i, j, self.max_levels), j))
        return out

    def _match_requests(self, requests: np.ndarray) -> np.ndarray:
        """Run the request/grant/accept iterations; input -> output map."""
        n = self.num_ports
        in_matched = np.full(n, -1, dtype=np.int64)  # input -> output
        out_matched = np.zeros(n, dtype=bool)

        for iteration in range(self.iterations):
            # Grant phase: each unmatched output picks one requesting,
            # unmatched input round-robin from its grant pointer.
            grants_to: dict[int, list[int]] = {}  # input -> outputs granting it
            granted_input: dict[int, int] = {}  # output -> input it granted
            for j in range(n):
                if out_matched[j]:
                    continue
                requesters = np.flatnonzero(requests[:, j] & (in_matched == -1))
                if requesters.size == 0:
                    continue
                i = self._rr_pick(requesters, int(self._grant_ptr[j]), n)
                granted_input[j] = i
                grants_to.setdefault(i, []).append(j)
            if not grants_to:
                break
            # Accept phase: each input picks one granting output
            # round-robin from its accept pointer.
            for i, outs in grants_to.items():
                j = self._rr_pick(
                    np.asarray(outs, dtype=np.int64), int(self._accept_ptr[i]), n
                )
                in_matched[i] = j
                out_matched[j] = True
                if iteration == 0:
                    self._grant_ptr[j] = (i + 1) % n
                    self._accept_ptr[i] = (j + 1) % n
        return in_matched
