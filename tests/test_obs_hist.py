"""Tests for repro.obs.hist — log-bucketed streaming histograms."""

import json
import math

import numpy as np
import pytest

from repro.obs.hist import LogHistogram


def exact_percentile(values, q):
    """The definition the histogram approximates."""
    return float(np.percentile(values, q, method="inverted_cdf"))


QS = (0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0)


def streams(rng):
    yield "uniform", rng.uniform(1.0, 1_000.0, size=5_000)
    yield "lognormal", np.exp(rng.normal(3.0, 1.5, size=5_000))
    yield "integers", rng.integers(1, 500, size=5_000).astype(float)
    yield "heavy-tail", rng.pareto(1.5, size=5_000) * 10.0 + 1.0
    yield "constant", np.full(100, 42.0)
    yield "tiny", np.array([3.0, 7.0, 11.0])


class TestErrorBound:
    def test_percentiles_within_alpha_of_exact(self):
        """The regression test backing StreamingStat.percentile: every
        quantile of every stream within the advertised relative error."""
        rng = np.random.default_rng(7)
        for name, values in streams(rng):
            hist = LogHistogram(alpha=0.01)
            hist.record_many(values)
            for q in QS:
                got = hist.percentile(q)
                want = exact_percentile(values, q)
                # The worst case sits exactly at alpha (values on bucket
                # edges), so allow a whisker of float slack on top.
                assert got == pytest.approx(want, rel=hist.alpha * 1.001), (
                    f"{name} p{q}: {got} vs exact {want}"
                )

    def test_coarser_alpha_still_bounded(self):
        rng = np.random.default_rng(3)
        values = np.exp(rng.normal(2.0, 2.0, size=3_000))
        hist = LogHistogram(alpha=0.05)
        hist.record_many(values)
        for q in (50.0, 99.0):
            assert hist.percentile(q) == pytest.approx(
                exact_percentile(values, q), rel=0.05
            )

    def test_endpoints_within_bound_and_clamped(self):
        hist = LogHistogram()
        hist.record_many([5.0, 17.0, 240.0])
        assert hist.percentile(0) == pytest.approx(5.0, rel=hist.alpha)
        assert hist.percentile(100) == pytest.approx(240.0, rel=hist.alpha)
        # Clamping keeps every estimate inside the observed range, which
        # makes a constant stream exact at every quantile.
        assert 5.0 <= hist.percentile(0)
        assert hist.percentile(100) <= 240.0
        const = LogHistogram()
        const.record_many([42.0] * 10)
        for q in QS:
            assert const.percentile(q) == 42.0

    def test_sub_min_values_land_in_zero_bucket(self):
        hist = LogHistogram(min_value=1.0)
        hist.record_many([0.0, 0.25, 0.5])
        # Bucket 0 estimates 0.0 but clamps into the observed range.
        assert hist.percentile(50) == 0.0
        assert hist.n == 3

    def test_overflow_estimates_exact_max(self):
        hist = LogHistogram(max_value=100.0)
        hist.record_many([5.0, 1e6, 2e6])
        assert hist.overflow == 2
        assert hist.percentile(100) == 2e6


class TestRecording:
    def test_negative_values_refused(self):
        hist = LogHistogram()
        assert hist.record(-1.0) is False
        assert hist.n == 0

    def test_counts_sum_and_moments_exact(self):
        values = [1.0, 2.0, 3.0, 400.0]
        hist = LogHistogram()
        hist.record_many(values)
        assert hist.n == len(hist) == 4
        assert hist.total == pytest.approx(sum(values))
        assert hist.mean == pytest.approx(sum(values) / 4)
        assert hist.min == 1.0 and hist.max == 400.0

    def test_empty_histogram(self):
        hist = LogHistogram()
        assert math.isnan(hist.percentile(50))
        assert math.isnan(hist.mean)
        assert len(hist) == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LogHistogram(alpha=0.0)
        with pytest.raises(ValueError):
            LogHistogram(alpha=1.0)
        with pytest.raises(ValueError):
            LogHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            LogHistogram(min_value=10.0, max_value=10.0)
        with pytest.raises(ValueError):
            LogHistogram().percentile(101)


class TestMerge:
    def test_merge_equals_combined_recording(self):
        rng = np.random.default_rng(11)
        a_vals = rng.uniform(1, 1e4, size=2_000)
        b_vals = np.exp(rng.normal(5, 2, size=2_000))
        a, b, combined = LogHistogram(), LogHistogram(), LogHistogram()
        a.record_many(a_vals)
        b.record_many(b_vals)
        combined.record_many(a_vals)
        combined.record_many(b_vals)
        a.merge(b)
        assert a.n == combined.n
        assert a.total == pytest.approx(combined.total)
        assert a.min == combined.min and a.max == combined.max
        for q in QS:
            assert a.percentile(q) == combined.percentile(q)

    def test_merge_rejects_incompatible(self):
        with pytest.raises(ValueError):
            LogHistogram(alpha=0.01).merge(LogHistogram(alpha=0.02))
        with pytest.raises(ValueError):
            LogHistogram(min_value=1.0).merge(LogHistogram(min_value=2.0))


class TestSerialization:
    def test_round_trip(self):
        rng = np.random.default_rng(5)
        hist = LogHistogram()
        hist.record_many(rng.uniform(0.0, 1e5, size=1_000))
        back = LogHistogram.from_dict(hist.to_dict())
        assert back.n == hist.n
        assert back.total == hist.total
        assert back.min == hist.min and back.max == hist.max
        for q in QS:
            assert back.percentile(q) == hist.percentile(q)
        back.merge(hist)  # round trip preserves compatibility
        assert back.n == 2 * hist.n

    def test_dict_is_strict_json(self):
        hist = LogHistogram()
        hist.record_many([1.0, 50.0])
        text = json.dumps(hist.to_dict(), allow_nan=False)
        assert LogHistogram.from_dict(json.loads(text)).n == 2

    def test_empty_serializes_null_extrema(self):
        data = LogHistogram().to_dict()
        assert data["min"] is None and data["max"] is None
        back = LogHistogram.from_dict(data)
        assert back.n == 0
        assert back.min == math.inf and back.max == -math.inf
