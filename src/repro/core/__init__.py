"""The paper's contribution: link and switch scheduling algorithms.

* Priority biasing: :class:`IABP`, :class:`SIABP` (plus baselines).
* Link scheduling: :class:`LinkScheduler` (candidate selection).
* Switch scheduling: :class:`CandidateOrderArbiter` (the proposal),
  :class:`WaveFrontArbiter` (the paper's comparison point), and the
  related-work baselines :class:`ISLIP` and :class:`PIM`.
"""

from .candidates import CandidateBuffer
from .coa import CandidateOrderArbiter
from .islip import ISLIP
from .link_scheduler import LinkScheduler
from .matching import (
    Arbiter,
    Candidate,
    Grant,
    best_candidate_for,
    buffer_best_vc,
    buffer_request_matrix,
    is_conflict_free,
    is_maximal,
    matching_size,
    request_matrix,
)
from .pim import PIM
from .priorities import FIFOPriority, IABP, PriorityScheme, SIABP, StaticPriority
from .registry import ARBITER_NAMES, SCHEME_NAMES, make_arbiter, make_scheme
from .rr import GreedyPriorityMatcher, RandomMatcher
from .selection import SelectionMatrix
from .wfa import WaveFrontArbiter

__all__ = [
    "CandidateBuffer",
    "CandidateOrderArbiter",
    "ISLIP",
    "LinkScheduler",
    "Arbiter",
    "Candidate",
    "Grant",
    "best_candidate_for",
    "buffer_best_vc",
    "buffer_request_matrix",
    "is_conflict_free",
    "is_maximal",
    "matching_size",
    "request_matrix",
    "PIM",
    "FIFOPriority",
    "IABP",
    "PriorityScheme",
    "SIABP",
    "StaticPriority",
    "ARBITER_NAMES",
    "SCHEME_NAMES",
    "make_arbiter",
    "make_scheme",
    "GreedyPriorityMatcher",
    "RandomMatcher",
    "SelectionMatrix",
    "WaveFrontArbiter",
]
