"""Event-skipping fold into the fabric loop: bit-identity twin runs.

``FabricSim(skip_idle=True)`` fast-forwards quiet stretches (no pending
fabric event, no static injection due, no flit in flight) instead of
stepping them; the contract is that the skipping run is byte-identical
to the stepping run — same result dict, same engine payload, same RNG
fingerprints — in both the legacy shared-arbiter-stream mode and the
per-router RNG mode the shard subsystem requires.
"""

import pytest

from repro.fabric.engine import FabricSim
from repro.fabric.spec import FabricSpec, TopologySpec
from repro.router.config import RouterConfig
from repro.sessions.churn import ChurnConfig


def make_config():
    return RouterConfig(num_ports=6, vcs_per_link=8, vc_buffer_depth=2,
                        candidate_levels=4, flit_cycles_per_round=800)


def make_fabric(rate=2.0, rng_mode="shared", static=False):
    return FabricSpec(
        topology=TopologySpec.torus(2, 3),
        churn=ChurnConfig(arrivals_per_kcycle=rate,
                          mean_hold_cycles=400.0,
                          mix=(("cbr-high", 1.0),)),
        conns_per_router=4 if static else 0,
        drain=static,
        sample_stride=200,
        rng_mode=rng_mode,
    )


def twin(fabric, cycles=2_000, load=0.0, seed=0):
    """Run the same point with and without idle skipping."""
    plain = FabricSim(fabric, make_config(), seed=seed)
    fast = FabricSim(fabric, make_config(), seed=seed, skip_idle=True)
    plain_result = plain.run(load, cycles)
    fast_result = fast.run(load, cycles)
    return plain, plain_result, fast, fast_result


@pytest.mark.parametrize("rng_mode", ["shared", "per-router"])
def test_churn_run_identical_with_skipping(rng_mode):
    fabric = make_fabric(rate=1.5, rng_mode=rng_mode)
    plain, plain_result, fast, fast_result = twin(fabric)
    assert fast_result.to_dict() == plain_result.to_dict()
    assert fast.engine.to_payload() == plain.engine.to_payload()
    assert fast.fingerprint() == plain.fingerprint()
    # Sparse churn leaves real idle stretches: the fold must engage.
    assert fast.skipped_cycles > 0
    assert plain.skipped_cycles == 0


def test_per_router_fingerprints_identical_with_skipping():
    fabric = make_fabric(rate=1.5, rng_mode="per-router")
    plain, _, fast, _ = twin(fabric)
    assert fast.router_fingerprints() == plain.router_fingerprints()


def test_zero_churn_static_drain_identical_with_skipping():
    fabric = make_fabric(rate=0.0, static=True)
    plain, plain_result, fast, fast_result = twin(fabric, load=0.3)
    assert fast_result.to_dict() == plain_result.to_dict()
    assert fast.fingerprint() == plain.fingerprint()


def test_static_load_with_churn_identical_with_skipping():
    fabric = make_fabric(rate=2.0, rng_mode="per-router", static=True)
    plain, plain_result, fast, fast_result = twin(fabric, load=0.2)
    assert fast_result.to_dict() == plain_result.to_dict()
    assert fast.engine.to_payload() == plain.engine.to_payload()
    assert fast.router_fingerprints() == plain.router_fingerprints()


def test_dense_traffic_skips_nothing():
    """Saturated static background leaves no idle stretch to skip."""
    fabric = make_fabric(rate=0.0, static=True)
    _, _, fast, _ = twin(fabric, cycles=600, load=0.9)
    assert fast.skipped_cycles < 600
