"""Dynamic session lifecycle: churn, runtime CAC, blocking experiments.

The paper's experiments pin every connection at cycle 0; this package
adds the missing dimension — sessions that arrive, hold, renegotiate
and depart mid-run, with online admission decisions:

* :mod:`~repro.sessions.churn` — deterministic Poisson/exponential/Pareto
  session generators over the repo's traffic classes;
* :mod:`~repro.sessions.signaling` — the setup/teardown/renegotiation
  protocol with configurable control-plane latencies, plus the
  :class:`~repro.sessions.signaling.SessionEngine` the simulation loop
  hooks (twin-loop, like telemetry: the disabled path is untouched);
* :mod:`~repro.sessions.policies` — pluggable CAC policies (paper,
  utilization-cap, measurement-based);
* :mod:`~repro.sessions.metrics` — blocking probabilities with Wilson
  intervals, offered vs carried erlangs, reservation-utilization series;
* :mod:`~repro.sessions.experiments` — campaign-executed blocking-
  probability sweeps (imported lazily; it pulls in ``repro.campaign``).
"""

from .churn import SESSION_CLASSES, ChurnConfig, SessionSpec, generate_timeline
from .metrics import SessionEventLog, SessionStats
from .policies import (
    CacPolicy,
    CacRequest,
    QosFeedback,
    make_policy,
    policy_names,
    register_policy,
)
from .signaling import (
    SessionEngine,
    SessionsSpec,
    SignalingConfig,
    readmit_elsewhere,
)

__all__ = [
    "SESSION_CLASSES",
    "ChurnConfig",
    "SessionSpec",
    "generate_timeline",
    "SessionEventLog",
    "SessionStats",
    "CacPolicy",
    "CacRequest",
    "QosFeedback",
    "make_policy",
    "policy_names",
    "register_policy",
    "SessionEngine",
    "SessionsSpec",
    "SignalingConfig",
    "readmit_elsewhere",
]
