"""Tests for repro.traffic.vbr (SR/BB injection models, Fig. 7 semantics)."""

import numpy as np
import pytest

from repro.router.config import RouterConfig
from repro.traffic.mpeg import SEQUENCE_STATS, generate_trace
from repro.traffic.vbr import VBRSource, default_frame_time_cycles, trace_to_flits


CFG = RouterConfig()
RNG = np.random.default_rng(0)


class TestTraceToFlits:
    def test_load_preserved_under_time_scaling(self):
        """Shrinking frame_time_cycles must not change per-stream load."""
        trace = generate_trace(SEQUENCE_STATS["football"], 4,
                               np.random.default_rng(1))
        full = default_frame_time_cycles(CFG)
        flits_full = trace_to_flits(trace, CFG, full)
        flits_small = trace_to_flits(trace, CFG, 2_000)
        load_full = flits_full.mean() / full
        load_small = flits_small.mean() / 2_000
        assert load_small == pytest.approx(load_full, rel=0.05)

    def test_bandwidth_scale_multiplies_load(self):
        trace = generate_trace(SEQUENCE_STATS["football"], 4,
                               np.random.default_rng(1))
        base = trace_to_flits(trace, CFG, 2_000, bandwidth_scale=1.0)
        scaled = trace_to_flits(trace, CFG, 2_000, bandwidth_scale=8.0)
        assert scaled.mean() / base.mean() == pytest.approx(8.0, rel=0.1)

    def test_every_frame_at_least_one_flit(self):
        trace = np.full(15, 1_000)  # tiny frames
        flits = trace_to_flits(trace, CFG, 2_000)
        assert (flits >= 1).all()

    def test_rejects_overfull_frames(self):
        trace = np.full(15, 10_000_000)
        with pytest.raises(ValueError, match="frame time"):
            trace_to_flits(trace, CFG, 100, bandwidth_scale=1000.0)

    def test_validation(self):
        trace = np.full(15, 1_000)
        with pytest.raises(ValueError):
            trace_to_flits(trace, CFG, 0)
        with pytest.raises(ValueError):
            trace_to_flits(trace, CFG, 100, bandwidth_scale=0)

    def test_default_frame_time_is_33ms(self):
        cycles = default_frame_time_cycles(CFG)
        assert cycles * CFG.flit_cycle_seconds == pytest.approx(33e-3, rel=0.01)


class TestVBRSourceValidation:
    def test_rejects_bad_model(self):
        with pytest.raises(ValueError):
            VBRSource(np.array([5]), 100, model="XX")

    def test_rejects_empty_or_zero_frames(self):
        with pytest.raises(ValueError):
            VBRSource(np.array([], dtype=np.int64), 100)
        with pytest.raises(ValueError):
            VBRSource(np.array([0]), 100)

    def test_rejects_frame_bigger_than_window(self):
        with pytest.raises(ValueError):
            VBRSource(np.array([101]), 100)

    def test_rejects_peak_below_largest_frame(self):
        with pytest.raises(ValueError, match="peak"):
            VBRSource(np.array([50]), 100, model="BB", peak_flits_per_frame=40)


class TestSRModel:
    def test_flits_spread_over_whole_frame_time(self):
        src = VBRSource(np.array([10]), frame_time_cycles=100, model="SR")
        sched = src.schedule(100, RNG)
        assert len(sched) == 10
        gaps = np.diff(sched.cycles)
        assert gaps.min() >= 9
        assert gaps.max() <= 11
        assert sched.cycles[-1] >= 90  # spans the window

    def test_per_frame_iat_varies_with_size(self):
        src = VBRSource(np.array([4, 20]), frame_time_cycles=100, model="SR")
        sched = src.schedule(200, RNG)
        first = sched.cycles[sched.frame_ids == 0]
        second = sched.cycles[sched.frame_ids == 1]
        assert np.diff(first).mean() > np.diff(second).mean()

    def test_last_flit_flagged_per_frame(self):
        src = VBRSource(np.array([5, 7]), frame_time_cycles=100, model="SR")
        sched = src.schedule(200, RNG)
        assert sched.frame_last.sum() == 2
        for fid, size in ((0, 5), (1, 7)):
            frame_mask = sched.frame_ids == fid
            assert frame_mask.sum() == size
            assert sched.frame_last[np.flatnonzero(frame_mask)[-1]]


class TestBBModel:
    def test_flits_burst_at_peak_rate(self):
        src = VBRSource(np.array([10]), frame_time_cycles=100, model="BB",
                        peak_flits_per_frame=50)
        sched = src.schedule(100, RNG)
        # IATp = 100/50 = 2 cycles: the frame finishes within 20 cycles.
        assert sched.cycles[-1] == 18
        assert np.diff(sched.cycles).max() == 2

    def test_source_idles_until_next_boundary(self):
        src = VBRSource(np.array([10, 10]), frame_time_cycles=100, model="BB",
                        peak_flits_per_frame=50)
        sched = src.schedule(200, RNG)
        second = sched.cycles[sched.frame_ids == 1]
        assert second[0] == 100  # next frame boundary, not earlier

    def test_default_peak_is_largest_frame(self):
        src = VBRSource(np.array([10, 40]), frame_time_cycles=100, model="BB")
        assert src.peak_flits_per_frame == 40

    def test_common_peak_faster_than_sr_for_small_frames(self):
        small = np.array([5])
        bb = VBRSource(small, 100, model="BB", peak_flits_per_frame=50)
        sr = VBRSource(small, 100, model="SR")
        bb_last = bb.schedule(100, RNG).cycles[-1]
        sr_last = sr.schedule(100, RNG).cycles[-1]
        assert bb_last < sr_last


class TestCommon:
    def test_mean_and_peak_load(self):
        src = VBRSource(np.array([10, 30]), frame_time_cycles=100)
        assert src.mean_load() == pytest.approx(0.2)
        assert src.peak_load() == pytest.approx(0.3)

    def test_trace_reused_cyclically(self):
        src = VBRSource(np.array([3, 6]), frame_time_cycles=10, model="SR")
        sched = src.schedule(40, RNG)
        sizes = [int((sched.frame_ids == k).sum()) for k in range(4)]
        assert sizes == [3, 6, 3, 6]

    def test_phase_offsets_boundaries(self):
        src = VBRSource(np.array([4]), frame_time_cycles=100, model="SR",
                        phase_cycles=25)
        sched = src.schedule(300, RNG)
        assert sched.cycles[0] == 25

    def test_truncated_frame_loses_last_marker(self):
        src = VBRSource(np.array([10]), frame_time_cycles=100, model="SR")
        sched = src.schedule(50, RNG)  # frame cut in half
        assert len(sched) < 10
        assert not sched.frame_last.any()

    def test_zero_horizon(self):
        src = VBRSource(np.array([4]), frame_time_cycles=100)
        assert len(src.schedule(0, RNG)) == 0
