#!/usr/bin/env python3
"""Inspecting scheduler decisions with the event tracer.

Attaches a :class:`repro.sim.Tracer` to a small router, replays a
contended scenario (three connections fighting for one output), and
prints the recorded matchings and departures — the workflow for debugging
a scheduling question ("why did this flit wait?") without print
statements in the simulator.

Run:  python examples/trace_debugging.py
"""

import numpy as np

from repro.router import MMRouter, RouterConfig, TrafficClass
from repro.sim import EventKind, Tracer

CYCLES = 12


def main() -> None:
    config = RouterConfig(
        num_ports=4, vcs_per_link=4, candidate_levels=2,
        vc_buffer_depth=2, flit_cycles_per_round=400,
    )
    router = MMRouter(config, arbiter="coa", scheme="siabp")

    # Three inputs target output 0; bandwidths differ, so SIABP+COA
    # should serve the fattest connection first and age the others in.
    conns = []
    for in_port, slots in ((0, 100), (1, 10), (2, 1)):
        res = router.establish(in_port, 0, TrafficClass.CBR, avg_slots=slots)
        conns.append(res.connection)
        print(f"connection {res.connection.conn_id}: input {in_port} "
              f"-> output 0, {slots} slots/round")

    rng = np.random.default_rng(0)
    with Tracer(router) as tracer:
        for conn in conns:
            router.nics[conn.in_port].inject(conn.vc, gen_cycle=0)
        for t in range(CYCLES):
            router.step(t, rng)

        print(f"\nRecorded {len(tracer)} events:")
        print(tracer.render())

        print("\nDeparture order for the contested output:")
        for event in tracer.filter(kind=EventKind.DEPARTURE):
            in_port = event.data[0]
            slots = {0: 100, 1: 10, 2: 1}[in_port]
            print(f"  cycle {event.cycle}: input {in_port} "
                  f"({slots} slots/round)")

    print(
        "\nThe highest-bandwidth connection crosses first (largest SIABP "
        "seed); the waiting connections' priorities double as their delay "
        "counters cross powers of two, so they follow within a few cycles "
        "instead of starving."
    )


if __name__ == "__main__":
    main()
