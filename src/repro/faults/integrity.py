"""Per-flit CRC: detection substrate for transient phit corruption.

The MMR transfers flits as 64 phits of 16 bits; a transient fault on the
link flips bits in transit.  The fault model protects each flit with a
CRC-8 field (polynomial 0x07, the ATM HEC generator) computed over the
flit's metadata words.  The simulator does not carry payload bits, so the
codeword is built from the metadata the cycle-accurate model does track —
which is exactly what the router needs intact for correct operation.

A single-bit flip anywhere in the codeword is always detected (CRC-8 has
Hamming distance >= 2 over these short codewords), so the NACK-and-
retransmit recovery in the harness never forwards a corrupt flit.
"""

from __future__ import annotations

__all__ = ["crc8", "flit_words", "corrupt_word", "verify"]

_POLY = 0x07
_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


def crc8(words: tuple[int, ...]) -> int:
    """CRC-8 (poly 0x07, init 0) over 64-bit words, big-endian bytes."""
    crc = 0
    for word in words:
        word &= _WORD_MASK
        for shift in range(_WORD_BITS - 8, -8, -8):
            crc ^= (word >> shift) & 0xFF
            for _ in range(8):
                crc = ((crc << 1) ^ _POLY) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
    return crc


def flit_words(
    port: int, vc: int, gen_cycle: int, frame_id: int, frame_last: bool
) -> tuple[int, ...]:
    """Pack a flit's link-level metadata into CRC codeword words."""
    return (
        (port << 32) | vc,
        gen_cycle & _WORD_MASK,
        (frame_id & 0xFFFFFFFF) | (int(frame_last) << 32),
    )


def corrupt_word(words: tuple[int, ...], bit: int) -> tuple[int, ...]:
    """Flip one bit of the codeword (``bit`` indexes the whole message)."""
    total = len(words) * _WORD_BITS
    if not (0 <= bit < total):
        raise ValueError(f"bit {bit} out of range for {total}-bit codeword")
    idx, offset = divmod(bit, _WORD_BITS)
    flipped = list(words)
    flipped[idx] ^= 1 << offset
    return tuple(flipped)


def verify(words: tuple[int, ...], crc: int) -> bool:
    """True if the codeword matches its CRC field."""
    return crc8(words) == crc
