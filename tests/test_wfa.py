"""Tests for the Wave Front Arbiter baseline."""

import numpy as np

import pytest

from repro.core.matching import (
    Candidate,
    is_conflict_free,
    is_maximal,
    restrict_levels,
)
from repro.core.wfa import WaveFrontArbiter


def cand(i, v, o, prio=1.0, level=0):
    return Candidate(i, v, o, prio, level)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestPlainWFA:
    def test_diagonal_precedence(self):
        """Unwrapped array: the top-left crosspoint always wins."""
        wfa = WaveFrontArbiter(2, wrapped=False)
        cands = [[cand(0, 0, 0)], [cand(1, 0, 0)]]
        for _ in range(5):
            grants = wfa.match(cands, rng())
            assert grants[0][:1] == (0,)  # input 0 persistently favoured

    def test_full_request_matrix_gets_full_matching(self):
        wfa = WaveFrontArbiter(4, wrapped=False, max_levels=None)
        cands = [
            [cand(i, 0, j, level=lvl) for lvl, j in enumerate(range(4))]
            for i in range(4)
        ]
        grants = wfa.match(cands, rng())
        assert len(grants) == 4


class TestWrappedWFA:
    def test_rotating_priority_is_fair(self):
        """The wrapped variant rotates precedence, so contending inputs
        alternate over successive arbitrations."""
        wfa = WaveFrontArbiter(2, wrapped=True)
        cands = [[cand(0, 0, 0)], [cand(1, 0, 0)]]
        winners = [wfa.match(cands, rng())[0][0] for _ in range(8)]
        assert set(winners) == {0, 1}
        # Strict alternation for N=2 single contested output.
        assert winners == [0, 1, 0, 1, 0, 1, 0, 1] or \
               winners == [1, 0, 1, 0, 1, 0, 1, 0]

    def test_reset_restores_start_diagonal(self):
        wfa = WaveFrontArbiter(2, wrapped=True)
        cands = [[cand(0, 0, 0)], [cand(1, 0, 0)]]
        first = wfa.match(cands, rng())[0][0]
        wfa.match(cands, rng())
        wfa.reset()
        assert wfa.match(cands, rng())[0][0] == first

    def test_priority_blind(self):
        """WFA ignores priority: a huge priority does not help an input
        that the wave reaches late (the paper's core criticism)."""
        wfa = WaveFrontArbiter(2, wrapped=True)
        cands = [[cand(0, 0, 0, prio=1.0)], [cand(1, 0, 0, prio=10_000.0)]]
        winners = {wfa.match(cands, rng())[0][0] for _ in range(2)}
        # Both inputs win once: the wave position, not priority, decides.
        assert winners == {0, 1}

    def test_best_level_candidate_transmits(self):
        """When a (input, output) pair is granted, the VC that transmits
        is the input's best-level candidate for that output."""
        wfa = WaveFrontArbiter(2, wrapped=True)
        cands = [
            [cand(0, 4, 1, prio=9.0, level=0), cand(0, 5, 1, prio=1.0, level=1)],
            [],
        ]
        grants = wfa.match(cands, rng())
        assert grants == [(0, 4, 1)]

    @pytest.mark.parametrize("max_levels", [1, 2, None])
    def test_conflict_free_and_maximal_fuzz(self, max_levels):
        generator = rng(3)
        wfa = WaveFrontArbiter(4, wrapped=True, max_levels=max_levels)
        for _ in range(300):
            cands = []
            for p in range(4):
                k = int(generator.integers(0, 5))
                cands.append(
                    [cand(p, lvl, int(generator.integers(4)), 1.0, lvl)
                     for lvl in range(k)]
                )
            grants = wfa.match(cands, generator)
            visible = restrict_levels(cands, max_levels)
            assert is_conflict_free(grants, 4)
            # Maximal with respect to the requests the hardware sees.
            assert is_maximal(visible, grants, 4)

    def test_multiple_levels_widen_the_matching(self):
        """Level >0 candidates give WFA more requests to match.

        WFA is maximal, not maximum: on the first arbitration the wave
        grants input 0 its contested level-0 output and input 1 starves.
        Once the wave rotates, input 0's level-1 escape to out1 lets both
        inputs match — which cannot happen without the extra level.
        """
        cands_with_escape = [
            [cand(0, 0, 0, level=0), cand(0, 1, 1, level=1)],
            [cand(1, 0, 0, level=0)],
        ]
        cands_without = [
            [cand(0, 0, 0, level=0)],
            [cand(1, 0, 0, level=0)],
        ]
        wfa = WaveFrontArbiter(2, wrapped=True, max_levels=None)
        sizes_with = [len(wfa.match(cands_with_escape, rng())) for _ in range(2)]
        wfa.reset()
        sizes_without = [len(wfa.match(cands_without, rng())) for _ in range(2)]
        assert sizes_with == [1, 2]
        assert sizes_without == [1, 1]
