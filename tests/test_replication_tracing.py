"""Tests for repro.sim.replication and repro.sim.tracing."""

import numpy as np
import pytest

from repro.router import MMRouter, RouterConfig, TrafficClass
from repro.sim.engine import RunControl
from repro.sim.replication import replicate, replicate_sweep
from repro.sim.simulation import SingleRouterSim
from repro.sim.tracing import EventKind, Tracer
from repro.traffic.mixes import build_cbr_workload


def small_config():
    # Enough VCs that the CBR builder always reaches its target load
    # (with 16 VCs the mix can exhaust the link's channels first).
    return RouterConfig(num_ports=4, vcs_per_link=48, candidate_levels=4)


def builder(router, rng, load):
    return build_cbr_workload(router, load, rng)


CONTROL = RunControl(cycles=2_000, warmup_cycles=400)


class TestReplication:
    def test_replicate_aggregates_over_seeds(self):
        point = replicate(builder, small_config(), "coa", CONTROL,
                          target_load=0.5, seeds=(1, 2, 3))
        assert point.n == 3
        thr = point.throughput
        assert thr.n == 3
        # Throughput tracks offered load below saturation.
        assert thr.mean == pytest.approx(point.offered_load.mean, rel=0.05)
        assert thr.half_width < 0.1

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            replicate(builder, small_config(), "coa", CONTROL, 0.5, seeds=())

    def test_different_seeds_give_different_workloads(self):
        point = replicate(builder, small_config(), "coa", CONTROL,
                          target_load=0.6, seeds=(1, 2))
        offered = [r.offered_load for r in point.results]
        assert offered[0] != offered[1]

    def test_metric_drops_nan_runs(self):
        point = replicate(builder, small_config(), "coa", CONTROL,
                          target_load=0.3, seeds=(1, 2))
        # "low" class may have no departures in a tiny run; the CI must
        # handle all-NaN gracefully and per-run NaN dropping.
        ci = point.flit_delay_us("nonexistent-label")
        assert ci.n == 0
        assert ci.mean != ci.mean  # NaN

    def test_replicate_sweep_shapes(self):
        points = replicate_sweep((0.3, 0.5), builder, small_config(), "coa",
                                 CONTROL, seeds=(1, 2))
        assert [p.target_load for p in points] == [0.3, 0.5]
        assert all(p.n == 2 for p in points)


class TestTracer:
    def make_router(self):
        cfg = RouterConfig(num_ports=2, vcs_per_link=4, candidate_levels=2,
                           flit_cycles_per_round=400)
        return MMRouter(cfg)

    def test_records_departures_and_matches(self):
        router = self.make_router()
        conn = router.establish(0, 1, TrafficClass.CBR, 10).connection
        tracer = Tracer(router).install()
        rng = np.random.default_rng(0)
        router.nics[0].inject(conn.vc, gen_cycle=0)
        for t in range(4):
            router.step(t, rng)
        tracer.uninstall()
        departures = tracer.filter(kind=EventKind.DEPARTURE)
        assert len(departures) == 1
        assert departures[0].data[:3] == (0, conn.vc, 1)
        assert len(tracer.filter(kind=EventKind.MATCH)) == 1
        assert len(tracer.filter(kind=EventKind.NIC_FORWARD)) == 1

    def test_context_manager_and_no_behaviour_change(self):
        def run(traced: bool):
            sim = SingleRouterSim(small_config(), arbiter="coa", seed=9)
            wl = build_cbr_workload(sim.router, 0.5, sim.rng.workload)
            if traced:
                with Tracer(sim.router):
                    return sim.run(wl, RunControl(cycles=1_000))
            return sim.run(wl, RunControl(cycles=1_000))

        plain = run(False)
        traced = run(True)
        assert plain.flit_delay_us == traced.flit_delay_us
        assert plain.utilization == traced.utilization

    def test_ring_bounds_memory(self):
        router = self.make_router()
        conn = router.establish(0, 1, TrafficClass.CBR, 10).connection
        tracer = Tracer(router, capacity=10).install()
        rng = np.random.default_rng(0)
        for t in range(40):
            router.nics[0].inject(conn.vc, gen_cycle=t)
            router.step(t, rng)
        assert len(tracer) == 10
        assert tracer.dropped > 0
        assert "dropped" in tracer.render()

    def test_filters(self):
        router = self.make_router()
        conn = router.establish(0, 1, TrafficClass.CBR, 10).connection
        tracer = Tracer(router).install()
        rng = np.random.default_rng(0)
        for t in range(8):
            if t < 3:
                router.nics[0].inject(conn.vc, gen_cycle=t)
            router.step(t, rng)
        in_window = tracer.filter(cycle_range=(0, 3))
        assert all(0 <= e.cycle < 3 for e in in_window)
        by_conn = tracer.departures_of(0, conn.vc)
        assert len(by_conn) == 3

    def test_install_idempotent(self):
        router = self.make_router()
        tracer = Tracer(router)
        assert tracer.install() is tracer
        tracer.install()  # second install must not double-wrap
        rng = np.random.default_rng(0)
        router.step(0, rng)
        tracer.uninstall()
        tracer.uninstall()  # and uninstall is safe to repeat

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(self.make_router(), capacity=0)
