"""Tests for fabric campaign integration (plan, executor, experiments).

Covers the campaign-facing contracts of the fabric dimension: hash
transparency (a point without ``fabric`` hashes exactly as before),
serial-vs-parallel byte identity of the artifact store, warm-cache
replay, and the Kaufman–Roberts bottleneck reference.
"""

import hashlib
import math
from pathlib import Path

import pytest

from repro.campaign.plan import PointSpec, WorkloadSpec
from repro.campaign.store import ResultStore
from repro.fabric.experiments import (
    DEMO_FABRIC_CHURN,
    bottleneck_kr_reference,
    fabric_blocking_plan,
    fabric_point,
    reduce_fabric_blocking,
    render_fabric_blocking_table,
    run_fabric_blocking,
    summarize_points,
)
from repro.fabric.spec import FabricSpec, TopologySpec
from repro.router.config import RouterConfig
from repro.sessions.churn import ChurnConfig
from repro.sim.engine import RunControl


def make_config(**overrides):
    base = dict(num_ports=6, vcs_per_link=8, vc_buffer_depth=2,
                candidate_levels=4, flit_cycles_per_round=800)
    base.update(overrides)
    return RouterConfig(**base)


def demo_plan(topology=None, rates=(2.0,), policies=("first-fit",),
              cycles=3_000):
    return fabric_blocking_plan(
        "fabric-test",
        make_config(),
        topology or TopologySpec.torus(2, 3),
        list(rates),
        list(policies),
        control=RunControl(cycles=cycles, warmup_cycles=0),
    )


def artifact_digest(root: Path) -> str:
    """Hash every stored artifact except the timestamped manifests."""
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.json")):
        if path.parent.name == "manifests":
            continue
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


class TestHashTransparency:
    def test_point_without_fabric_hashes_as_before(self):
        spec = PointSpec(
            config=make_config(), arbiter="coa", scheme="siabp",
            target_load=0.5, seed=0, workload=WorkloadSpec.cbr(),
            cycles=1_000, warmup_cycles=0,
        )
        assert "fabric" not in spec.to_dict()
        explicit = PointSpec(
            config=make_config(), arbiter="coa", scheme="siabp",
            target_load=0.5, seed=0, workload=WorkloadSpec.cbr(),
            cycles=1_000, warmup_cycles=0, fabric=None,
        )
        assert explicit.key() == spec.key()

    def test_fabric_changes_the_key(self):
        plain = PointSpec(
            config=make_config(), arbiter="coa", scheme="siabp",
            target_load=0.0, seed=0, workload=WorkloadSpec.cbr(),
            cycles=1_000, warmup_cycles=0,
        )
        fab = fabric_point(
            make_config(),
            FabricSpec(topology=TopologySpec.ring(4)),
            cycles=1_000,
        )
        assert fab.key() != plain.key()

    def test_round_trip(self):
        point = fabric_point(
            make_config(),
            FabricSpec(topology=TopologySpec.fat_tree(4),
                       churn=DEMO_FABRIC_CHURN, path_policy="wrr"),
            cycles=2_000, seed=3,
        )
        data = point.to_dict()
        again = PointSpec.from_dict(data)
        assert again == point
        assert again.key() == point.key()
        assert "fabric" in data
        assert "fabric" in point.describe()


class TestExecution:
    def test_serial_parallel_byte_identical(self, tmp_path):
        plan = demo_plan(rates=(1.0, 3.0))
        serial, parallel = tmp_path / "serial", tmp_path / "parallel"
        run_fabric_blocking(plan, jobs=1, store=ResultStore(serial))
        run_fabric_blocking(plan, jobs=2, store=ResultStore(parallel))
        assert artifact_digest(serial) == artifact_digest(parallel)

    def test_warm_cache_replays(self, tmp_path):
        plan = demo_plan()
        store = ResultStore(tmp_path / "store")
        cold, cold_points = run_fabric_blocking(plan, jobs=1, store=store)
        warm, warm_points = run_fabric_blocking(plan, jobs=1, store=store)
        assert cold.misses == len(plan.points)
        assert warm.hits == len(plan.points)
        assert cold_points == warm_points

    def test_reduction_fields(self):
        plan = demo_plan(policies=("ecmp",))
        result, points = run_fabric_blocking(plan, jobs=1)
        assert len(points) == 1
        point = points[0]
        assert point.topology == "torus(cols=3,rows=2)"
        assert point.policy == "ecmp"
        assert point.offered_sessions > 0
        assert 0.0 <= point.blocking_probability <= 1.0
        low, high = point.blocking_wilson_95
        assert 0.0 <= low <= point.blocking_probability <= high <= 1.0
        assert point.mean_hops >= 1.0
        assert 0.0 < point.balance_jain <= 1.0
        # pure-CBR mix: the KR reference is defined and sane.
        assert 0.0 <= point.kaufman_roberts_reference <= 1.0
        table = render_fabric_blocking_table(points)
        assert "torus" in table and "ecmp" in table
        summary = summarize_points(points)
        assert summary["points"][0]["policy"] == "ecmp"

    def test_reduction_rejects_non_fabric_outcomes(self):
        plan = demo_plan()
        result, _ = run_fabric_blocking(plan, jobs=1)
        stripped = result.outcomes[0].__class__(
            **{**result.outcomes[0].__dict__, "sessions": None}
        )
        result.outcomes[0] = stripped
        with pytest.raises(ValueError, match="no fabric payload"):
            reduce_fabric_blocking(result)


class TestKaufmanRobertsReference:
    def test_monotone_in_offered_load(self):
        fab = FabricSpec(topology=TopologySpec.ring(6),
                         churn=DEMO_FABRIC_CHURN)
        config = make_config()
        refs = [bottleneck_kr_reference(fab, config, erl)
                for erl in (5.0, 20.0, 80.0)]
        assert all(0.0 <= r <= 1.0 for r in refs)
        assert refs[0] < refs[1] < refs[2]

    def test_nan_for_non_cbr_mix(self):
        fab = FabricSpec(
            topology=TopologySpec.ring(4),
            churn=ChurnConfig(mix=(("vbr", 1.0),)),
        )
        assert math.isnan(
            bottleneck_kr_reference(fab, make_config(), 10.0))

    def test_fat_tree_bottleneck_below_single_link_share(self):
        # Equal-cost splitting over 4 core paths must reduce the
        # bottleneck share vs the ring, where paths concentrate.
        config = make_config()
        ring_ref = bottleneck_kr_reference(
            FabricSpec(topology=TopologySpec.ring(8),
                       churn=DEMO_FABRIC_CHURN), config, 40.0)
        ft_ref = bottleneck_kr_reference(
            FabricSpec(topology=TopologySpec.fat_tree(4),
                       churn=DEMO_FABRIC_CHURN), config, 40.0)
        assert ft_ref < ring_ref


class TestPlanValidation:
    def test_needs_rates_and_policies(self):
        with pytest.raises(ValueError):
            fabric_blocking_plan("x", make_config(),
                                 TopologySpec.ring(4), [], ["ecmp"])
        with pytest.raises(ValueError):
            fabric_blocking_plan("x", make_config(),
                                 TopologySpec.ring(4), [1.0], [])

    def test_grid_order(self):
        plan = fabric_blocking_plan(
            "x", make_config(), TopologySpec.ring(4),
            [1.0, 2.0], ["first-fit", "ecmp"],
        )
        combos = [(p.fabric.path_policy, p.fabric.churn.arrivals_per_kcycle)
                  for p in plan.points]
        assert combos == [("first-fit", 1.0), ("first-fit", 2.0),
                          ("ecmp", 1.0), ("ecmp", 2.0)]
