"""Fairness metrics for the cross-paradigm scheduler comparison.

Two complementary views of "fair":

* **Jain's index** over per-flow *normalized* service
  ``x_i = service_i / weight_i``: 1.0 when every flow gets service
  exactly proportional to its reservation, ``1/n`` when one flow
  monopolizes the link.  Scheduler-agnostic — it reads measured flit
  counts (the obs QoS per-connection records) against reserved slots.
* **Worst-case GPS lag**: how far (in cycles) any packetized flit
  finished *behind* its exact fluid-GPS finish time
  (:class:`repro.fq.gps.GpsFluid`).  PGPS theory bounds this by one
  maximum packet time for true WFQ on a dedicated link; deficit schemes
  trade a larger lag for cheaper hardware, which is exactly the
  frontier the comparison suite plots.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["jain_index", "normalized_service", "worst_case_gps_lag"]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 = perfectly equal shares; ``1/n`` = one flow takes everything.
    All-zero allocations are perfectly equal, hence 1.0; negative
    allocations are rejected (service counts cannot be negative).
    """
    xs = [float(x) for x in values]
    if not xs:
        return float("nan")
    if any(x < 0 for x in xs):
        raise ValueError("service allocations must be non-negative")
    total = sum(xs)
    if total == 0:
        return 1.0
    square_sum = sum(x * x for x in xs)
    return (total * total) / (len(xs) * square_sum)


def normalized_service(
    service: Sequence[float], weights: Sequence[float]
) -> list[float]:
    """Per-flow service divided by weight (reserved slots).

    The input to :func:`jain_index` for *weighted* fairness: a weighted
    scheduler is fair when normalized service is equal across flows.
    """
    if len(service) != len(weights):
        raise ValueError("service and weights must have equal length")
    out = []
    for s, w in zip(service, weights):
        if w <= 0:
            raise ValueError("weights must be positive")
        out.append(float(s) / float(w))
    return out


def worst_case_gps_lag(
    gps_finish: Mapping[int, Sequence[float]],
    actual_finish: Mapping[int, Sequence[float]],
) -> float:
    """Max over all flits of ``actual_finish - gps_finish``, in cycles.

    ``gps_finish`` maps flow id to the fluid reference's per-flit finish
    times (:attr:`repro.fq.gps.GpsResult.finish_times`; Fractions are
    fine); ``actual_finish`` maps the same flow ids to measured
    departure cycles.  A truncated run may have measured fewer flits
    than the reference — extra reference flits are ignored — but a flow
    with *more* measured flits than the reference is a harness bug and
    raises.  Negative lag means the packetized scheduler ran ahead of
    the fluid (possible: GPS serves everyone at once, packets go one at
    a time).
    """
    worst = -math.inf
    seen_any = False
    for fid, actual in actual_finish.items():
        if fid not in gps_finish:
            raise ValueError(f"flow {fid} missing from the GPS reference")
        ref = gps_finish[fid]
        if len(actual) > len(ref):
            raise ValueError(
                f"flow {fid}: {len(actual)} measured flits exceed the "
                f"{len(ref)} the GPS reference accounts for"
            )
        for a, g in zip(actual, ref):
            seen_any = True
            lag = float(a) - float(g)
            if lag > worst:
                worst = lag
    return worst if seen_any else float("nan")
