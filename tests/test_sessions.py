"""Dynamic session lifecycle (repro.sessions): churn, signaling, CAC.

Covers the PR's acceptance gates directly:

* byte-replay — two same-seed churn runs produce identical event logs,
  stats payloads, SimResults, and RNG fingerprints;
* zero-churn bit-identity — a sessions run with arrival rate 0 is
  indistinguishable from a plain run (results AND RNG states);
* reservation safety — random admit/renegotiate/release sequences never
  overcommit a link, and releases restore the ledgers exactly.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.router import RouterConfig
from repro.router.connection import TrafficClass
from repro.router.router import MMRouter
from repro.sessions import (
    ChurnConfig,
    QosFeedback,
    SessionEngine,
    SessionsSpec,
    SignalingConfig,
    generate_timeline,
    make_policy,
    policy_names,
)
from repro.sessions.churn import SESSION_CLASSES
from repro.sessions.policies import CacRequest
from repro.sim import RunControl
from repro.sim.simulation import SingleRouterSim
from repro.traffic.mixes import build_cbr_workload

CFG = RouterConfig(num_ports=4, vcs_per_link=32, candidate_levels=4)

CHURN = ChurnConfig(
    arrivals_per_kcycle=3.0,
    mean_hold_cycles=1_200.0,
    mix=(("cbr-low", 0.4), ("cbr-medium", 0.25), ("vbr", 0.2),
         ("best-effort", 0.15)),
)


def churn_run(cycles=4_000, seed=7, spec=None, load=0.1):
    sim = SingleRouterSim(CFG, arbiter="coa", scheme="siabp", seed=seed)
    workload = build_cbr_workload(sim.router, load, sim.rng.workload)
    engine = SessionEngine.from_spec(
        CFG, spec or SessionsSpec(churn=CHURN), cycles, sim.rng.sessions
    )
    result = sim.run(
        workload, RunControl(cycles=cycles, warmup_cycles=0), sessions=engine
    )
    return result, engine, sim.rng.state_fingerprint()


# ----------------------------------------------------------------------
# Churn timeline generation
# ----------------------------------------------------------------------


class TestChurnTimeline:
    def test_same_seed_same_timeline(self):
        a = generate_timeline(CFG, CHURN, 10_000,
                              np.random.default_rng(3))
        b = generate_timeline(CFG, CHURN, 10_000,
                              np.random.default_rng(3))
        assert len(a) == len(b) > 0
        for sa, sb in zip(a, b):
            assert sa.sid == sb.sid
            assert (sa.in_port, sa.out_port) == (sb.in_port, sb.out_port)
            assert sa.arrival_cycle == sb.arrival_cycle
            assert sa.hold_cycles == sb.hold_cycles
            assert np.array_equal(sa.cycles, sb.cycles)
            assert sa.reneg_plan == sb.reneg_plan

    def test_zero_rate_draws_nothing(self):
        rng = np.random.default_rng(11)
        before = rng.bit_generator.state
        churn = dataclasses.replace(CHURN, arrivals_per_kcycle=0.0)
        assert generate_timeline(CFG, churn, 10_000, rng) == []
        assert rng.bit_generator.state == before

    def test_arrivals_sorted_and_within_horizon(self):
        sessions = generate_timeline(CFG, CHURN, 8_000,
                                     np.random.default_rng(5))
        arrivals = [s.arrival_cycle for s in sessions]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < 8_000 for a in arrivals)
        assert [s.sid for s in sessions] == list(range(len(sessions)))

    def test_mix_classes_all_appear(self):
        sessions = generate_timeline(CFG, CHURN, 60_000,
                                     np.random.default_rng(1))
        seen = {s.cls_name for s in sessions}
        assert seen == {name for name, w in CHURN.mix if w > 0}
        assert seen <= set(SESSION_CLASSES)

    def test_pareto_holds_respect_minimum(self):
        churn = dataclasses.replace(
            CHURN, hold_dist="pareto", min_hold_cycles=300
        )
        sessions = generate_timeline(CFG, churn, 30_000,
                                     np.random.default_rng(2))
        assert sessions
        assert all(s.hold_cycles >= 300 for s in sessions)

    def test_injection_schedules_are_admission_relative(self):
        sessions = generate_timeline(CFG, CHURN, 30_000,
                                     np.random.default_rng(4))
        injecting = [s for s in sessions if len(s.cycles)]
        assert injecting
        for s in injecting:
            assert s.cycles[0] >= 0
            assert s.cycles[-1] < s.hold_cycles

    def test_config_roundtrips_through_dict(self):
        assert ChurnConfig.from_dict(CHURN.to_dict()) == CHURN
        pareto = dataclasses.replace(CHURN, hold_dist="pareto")
        assert ChurnConfig.from_dict(pareto.to_dict()) == pareto

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            ChurnConfig(arrivals_per_kcycle=-1.0)
        with pytest.raises(ValueError):
            ChurnConfig(mix=(("no-such-class", 1.0),))
        with pytest.raises(ValueError):
            ChurnConfig(hold_dist="uniform")
        with pytest.raises(ValueError):
            ChurnConfig(hold_dist="pareto", pareto_shape=1.0)


# ----------------------------------------------------------------------
# Acceptance gates: replay and zero-churn identity
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_same_seed_replays_byte_identically(self):
        r1, e1, fp1 = churn_run()
        r2, e2, fp2 = churn_run()
        assert e1.event_log.lines() == e2.event_log.lines()
        assert e1.to_payload() == e2.to_payload()
        assert r1.to_dict() == r2.to_dict()
        assert fp1 == fp2

    def test_different_seed_differs(self):
        _, e1, _ = churn_run(seed=7)
        _, e2, _ = churn_run(seed=8)
        assert e1.event_log.lines() != e2.event_log.lines()

    def test_zero_churn_is_bit_identical_to_plain_run(self):
        cycles, seed = 3_000, 5
        sim = SingleRouterSim(CFG, arbiter="coa", scheme="siabp", seed=seed)
        workload = build_cbr_workload(sim.router, 0.3, sim.rng.workload)
        plain = sim.run(workload, RunControl(cycles=cycles, warmup_cycles=0))
        plain_fp = sim.rng.state_fingerprint()

        spec = SessionsSpec(
            churn=dataclasses.replace(CHURN, arrivals_per_kcycle=0.0)
        )
        result, engine, fp = churn_run(
            cycles=cycles, seed=seed, spec=spec, load=0.3
        )
        assert len(engine.event_log) == 0
        assert result.to_dict() == plain.to_dict()
        assert fp == plain_fp


# ----------------------------------------------------------------------
# Session lifecycle through the simulator
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_full_lifecycle_admits_and_releases(self):
        result, engine, _ = churn_run(cycles=6_000)
        payload = engine.to_payload()
        counts = payload["event_counts"]
        assert counts["arrive"] == payload["offered"] > 0
        assert counts["admit"] == payload["admitted"] > 0
        assert counts.get("release", 0) > 0
        # Every admitted session either released or was still live at
        # the horizon.
        assert (payload["admitted"]
                == counts.get("release", 0) + payload["expired_active"])

    def test_ledgers_clean_after_run(self):
        # finish() audits; a corrupt ledger would have raised inside
        # churn_run.  Assert the audit really ran against live state.
        _, engine, _ = churn_run(cycles=5_000)
        router = engine._router
        router.admission.audit(router.table)

    def test_setup_latency_delays_admission(self):
        spec = SessionsSpec(
            churn=CHURN,
            signaling=SignalingConfig(setup_latency_cycles=40),
        )
        _, engine, _ = churn_run(cycles=4_000, spec=spec)
        arrivals, admits = {}, {}
        for ev in engine.event_log.events:
            if ev.kind == "arrive":
                arrivals[ev.sid] = ev.cycle
            elif ev.kind == "admit":
                admits[ev.sid] = ev.cycle
        assert admits
        assert all(admits[sid] - arrivals[sid] == 40 for sid in admits)

    def test_vbr_sessions_renegotiate(self):
        spec = SessionsSpec(
            churn=ChurnConfig(
                arrivals_per_kcycle=1.0,
                mean_hold_cycles=8_000.0,
                vbr_frame_time_cycles=200,
                mix=(("vbr", 1.0),),
            )
        )
        _, engine, _ = churn_run(cycles=14_000, spec=spec)
        payload = engine.to_payload()
        assert payload["reneg_ok"] + payload["reneg_rejected"] > 0

    def test_blocking_under_heavy_load(self):
        spec = SessionsSpec(
            churn=ChurnConfig(
                arrivals_per_kcycle=8.0,
                mean_hold_cycles=4_000.0,
                mix=(("cbr-high", 1.0),),
            )
        )
        _, engine, _ = churn_run(cycles=8_000, spec=spec)
        payload = engine.to_payload()
        assert payload["blocked"] > 0
        low, high = payload["blocking_wilson_95"]
        assert 0.0 <= low <= payload["blocking_probability"] <= high <= 1.0

    def test_utilization_series_sampled(self):
        _, engine, _ = churn_run(cycles=4_000)
        series = engine.to_payload()["utilization_series"]
        assert len(series) == 4_000 // 500
        for cycle, in_frac, out_frac in series:
            assert 0.0 <= in_frac <= 1.0
            assert 0.0 <= out_frac <= 1.0

    def test_spec_roundtrips_through_dict(self):
        spec = SessionsSpec(
            churn=CHURN, policy="util-cap",
            signaling=SignalingConfig(setup_latency_cycles=9),
            sample_stride=250,
        )
        assert SessionsSpec.from_dict(spec.to_dict()) == spec


# ----------------------------------------------------------------------
# CAC policies
# ----------------------------------------------------------------------


class TestPolicies:
    def test_registry_lists_builtins(self):
        assert {"paper", "util-cap", "measurement"} <= set(policy_names())
        with pytest.raises(ValueError):
            make_policy("no-such-policy")

    def test_util_cap_blocks_earlier_than_paper(self):
        def blocked(policy):
            spec = SessionsSpec(
                churn=ChurnConfig(
                    arrivals_per_kcycle=6.0,
                    mean_hold_cycles=4_000.0,
                    mix=(("cbr-high", 1.0),),
                ),
                policy=policy,
            )
            _, engine, _ = churn_run(cycles=6_000, spec=spec)
            return engine.to_payload()["blocked"]

        assert blocked("util-cap") > blocked("paper") > 0

    def test_util_cap_passes_best_effort(self):
        router = MMRouter(CFG)
        policy = make_policy("util-cap", cap=0.001)
        be = CacRequest(0, 1, TrafficClass.BEST_EFFORT, 1, 1)
        cbr = CacRequest(0, 1, TrafficClass.CBR, 1000, 1000)
        feedback = QosFeedback()
        assert policy.decide(be, router.admission, feedback, now=0)
        assert not policy.decide(cbr, router.admission, feedback, now=0)

    def test_measurement_policy_reacts_to_violations(self):
        router = MMRouter(CFG)
        policy = make_policy("measurement", window_cycles=100,
                             max_violations=3)
        req = CacRequest(0, 1, TrafficClass.CBR, 10, 10)
        feedback = QosFeedback()
        assert policy.decide(req, router.admission, feedback, now=50)
        for cycle in (10, 20, 30):
            feedback.note(cycle)
        assert not policy.decide(req, router.admission, feedback, now=50)
        # Violations age out of the window.
        assert policy.decide(req, router.admission, feedback, now=500)

    def test_feedback_window_prunes(self):
        feedback = QosFeedback()
        for cycle in range(10):
            feedback.note(cycle)
        assert feedback.count_since(5) == 5
        assert feedback.total == 10


# ----------------------------------------------------------------------
# Reservation safety under churn (satellite: property test)
# ----------------------------------------------------------------------


class TestReservationProperties:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_admit_reneg_release_never_overcommits(self, seed):
        rng = np.random.default_rng(seed)
        router = MMRouter(CFG)
        round_cycles = CFG.round_cycles
        peak_budget = round_cycles * CFG.concurrency_factor
        baseline = router.admission.reservation_vectors()
        live = []

        for _ in range(400):
            op = rng.integers(0, 3)
            if op == 0:  # admit
                tc = (TrafficClass.VBR if rng.integers(0, 2)
                      else TrafficClass.CBR)
                avg = int(rng.integers(1, round_cycles // 6))
                peak = (int(avg * (1 + rng.integers(0, 4)))
                        if tc is TrafficClass.VBR else avg)
                result = router.establish(
                    int(rng.integers(0, CFG.num_ports)),
                    int(rng.integers(0, CFG.num_ports)),
                    tc, avg, peak,
                )
                if result.accepted:
                    live.append(result.connection)
            elif op == 1 and live:  # renegotiate a random VBR peak
                conn = live[int(rng.integers(0, len(live)))]
                if conn.traffic_class is TrafficClass.VBR:
                    new_peak = int(conn.avg_slots *
                                   (1 + rng.integers(0, 6)))
                    decision = router.renegotiate_peak(conn.conn_id, new_peak)
                    if decision:
                        live = [router.table.get(c.conn_id) for c in live]
            elif op == 2 and live:  # release
                conn = live.pop(int(rng.integers(0, len(live))))
                router.teardown(conn.conn_id)

            vectors = router.admission.reservation_vectors()
            assert all(v <= round_cycles for v in vectors["avg_in"])
            assert all(v <= round_cycles for v in vectors["avg_out"])
            assert all(v <= peak_budget for v in vectors["peak_in"])
            assert all(v <= peak_budget for v in vectors["peak_out"])
            router.admission.audit(router.table)

        for conn in live:
            router.teardown(conn.conn_id)
        assert router.admission.reservation_vectors() == baseline

    def test_release_restores_vectors_exactly(self):
        router = MMRouter(CFG)
        before = router.admission.reservation_vectors()
        result = router.establish(0, 2, TrafficClass.VBR, 100, 400)
        assert result.accepted
        mid = router.admission.reservation_vectors()
        assert mid != before
        router.renegotiate_peak(result.connection.conn_id, 700)
        router.teardown(result.connection.conn_id)
        assert router.admission.reservation_vectors() == before

    def test_renegotiate_rejects_peak_below_avg(self):
        router = MMRouter(CFG)
        result = router.establish(0, 1, TrafficClass.VBR, 100, 200)
        decision = router.renegotiate_peak(result.connection.conn_id, 50)
        assert not decision
        assert "peak" in decision.reason

    def test_renegotiate_rejects_cbr(self):
        router = MMRouter(CFG)
        result = router.establish(0, 1, TrafficClass.CBR, 100)
        decision = router.renegotiate_peak(result.connection.conn_id, 300)
        assert not decision

    def test_renegotiate_respects_peak_budget(self):
        router = MMRouter(CFG)
        budget = int(CFG.round_cycles * CFG.concurrency_factor)
        result = router.establish(0, 1, TrafficClass.VBR, 10, budget)
        assert result.accepted
        conn = result.connection
        assert not router.renegotiate_peak(conn.conn_id, budget + 1)
        # Rejection leaves the table and ledgers untouched.
        assert router.table.get(conn.conn_id).peak_slots == budget
        router.admission.audit(router.table)

    def test_renegotiated_peak_visible_in_table(self):
        router = MMRouter(CFG)
        result = router.establish(0, 1, TrafficClass.VBR, 100, 200)
        assert router.renegotiate_peak(result.connection.conn_id, 500)
        assert router.table.get(result.connection.conn_id).peak_slots == 500


# ----------------------------------------------------------------------
# Blocking analysis helpers
# ----------------------------------------------------------------------


class TestBlockingAnalysis:
    def test_erlang_b_known_values(self):
        from repro.analysis.blocking import erlang_b

        # Classic tabulated point: 10 erlangs on 10 servers ~ 0.215.
        assert math.isclose(erlang_b(10.0, 10), 0.2146, abs_tol=1e-3)
        assert erlang_b(0.0, 5) == 0.0
        assert erlang_b(5.0, 0) == 1.0

    def test_erlang_b_monotonic_in_load(self):
        from repro.analysis.blocking import erlang_b

        values = [erlang_b(a, 8) for a in (1.0, 4.0, 8.0, 16.0)]
        assert values == sorted(values)
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_wilson_interval_brackets_estimate(self):
        from repro.analysis.stats import wilson_interval

        low, high = wilson_interval(20, 100)
        assert low < 0.2 < high
        assert wilson_interval(0, 0) == (0.0, 1.0)
        lo0, hi0 = wilson_interval(0, 50)
        assert lo0 == 0.0 and hi0 > 0.0

    def test_render_blocking_table(self):
        from repro.analysis.blocking import (
            BlockingPoint,
            render_blocking_table,
        )

        points = [
            BlockingPoint("paper", 10.0, 100, 5),
            BlockingPoint("util-cap", 10.0, 100, 9,
                          erlang_b_reference=0.1),
        ]
        text = render_blocking_table(points, title="demo")
        assert "paper" in text and "util-cap" in text
        assert "P(block)" in text
