"""A4/A5 — baseline arbiters and the source of COA's advantage.

The paper compares COA only against the WFA (arguing WFA dominates DSA,
2DRR, iSLIP and PIM in prior art).  This bench widens the comparison and
separates COA's two ingredients:

* conventional single-request arbiters (wfa, islip, pim) all hit the
  same head-of-line wall on the multiplexed crossbar;
* giving the WFA all candidate levels (``wfa-multi``, ablation A5)
  recovers the lost *throughput* — multi-candidate selection is what
  buys raw utilization;
* but priority awareness is still needed for *QoS*: the priority-blind
  wfa-multi lets high-load contention spill into whichever connections
  the wave happens to disfavour, where COA (and the greedy
  priority matcher) protect the reserved classes.
"""

import pytest

from conftest import BENCH_SEED
from repro.analysis import render_table
from repro.sim.engine import RunControl
from repro.sim.experiments import default_config, get_scale
from repro.sim.simulation import SingleRouterSim
from repro.traffic.mixes import build_cbr_workload

ARBITERS = ("coa", "greedy", "wfa", "wfa-multi", "islip", "islip-multi",
            "pim", "pim-multi")
LOAD = 0.8


def _run():
    scale = get_scale("ci")
    control = RunControl(scale.cbr_cycles, scale.cbr_warmup)
    out = {}
    for arbiter in ARBITERS:
        sim = SingleRouterSim(default_config(), arbiter=arbiter, seed=BENCH_SEED)
        workload = build_cbr_workload(sim.router, LOAD, sim.rng.workload)
        out[arbiter] = sim.run(workload, control)
    return out


@pytest.mark.benchmark(group="baselines")
def test_baseline_arbiters(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    rows = [
        [name, r.offered_load * 100, r.throughput * 100,
         r.flit_delay_us["overall"], r.backlog]
        for name, r in results.items()
    ]
    print(render_table(
        ["arbiter", "offered %", "throughput %", "mean delay us", "backlog"],
        rows,
        title=f"A4/A5 — arbiter comparison at {LOAD:.0%} CBR load "
              "(single-request vs multi-candidate vs priority-aware)",
    ))

    # A4: every conventional single-request arbiter saturates here.
    for name in ("wfa", "islip", "pim"):
        assert results[name].normalized_throughput < 0.92, name
    # COA delivers the offered load.
    assert results["coa"].normalized_throughput > 0.97

    # A5: multi-candidate selection recovers throughput even without
    # priority awareness...
    for single, multi in (("wfa", "wfa-multi"), ("islip", "islip-multi"),
                          ("pim", "pim-multi")):
        assert results[multi].throughput > results[single].throughput, multi
        assert results[multi].normalized_throughput > 0.95, multi
    # ...but the priority-aware matchers still deliver better service
    # (lower overall delay) than the priority-blind multi variant.
    assert results["coa"].flit_delay_us["overall"] < \
        results["wfa-multi"].flit_delay_us["overall"] * 3
