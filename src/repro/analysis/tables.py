"""ASCII rendering of result tables and curve series.

Every bench prints its reproduced table/figure through these helpers so
the output reads like the paper's artifacts: a header, aligned columns,
and for figures a simple (load, value-per-arbiter) series table plus an
optional log-scale sparkline for eyeballing the hockey stick.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["render_table", "render_series", "sparkline"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table; floats are shown with 4 significant digits."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell != cell:  # NaN
                return "-"
            if cell in (float("inf"), float("-inf")):
                return "inf" if cell > 0 else "-inf"
            return f"{cell:.4g}"
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    series: dict[str, Sequence[tuple[float, float]]],
    title: str | None = None,
) -> str:
    """Table with one x column and one column per named series.

    All series must share their x grid (the sweeps guarantee it).
    """
    if not series:
        raise ValueError("no series to render")
    names = list(series)
    first = list(series[names[0]])
    xs = [x for x, _ in first]
    for name in names[1:]:
        other = [x for x, _ in series[name]]
        if len(other) != len(xs) or any(
            abs(a - b) > 1e-6 * max(1.0, abs(a)) for a, b in zip(xs, other)
        ):
            raise ValueError(f"series {name!r} has a different x grid")
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [list(series[name])[i][1] for name in names])
    return render_table([x_label] + names, rows, title)


_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], log: bool = False) -> str:
    """Unicode mini-chart of a series (log scale optional).

    NaN entries (e.g. "no flits of this class departed at this load")
    render as ``·``.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    finite = [v for v in vals if v == v]
    if not finite:
        return "·" * len(vals)
    if log:
        floor = min((v for v in finite if v > 0), default=1.0)
        vals = [math.log10(max(v, floor)) if v == v else v for v in vals]
        finite = [v for v in vals if v == v]
    lo, hi = min(finite), max(finite)
    out = []
    for v in vals:
        if v != v:
            out.append("·")
        elif hi == lo:
            out.append(_BARS[1])
        else:
            idx = 1 + int((v - lo) / (hi - lo) * (len(_BARS) - 2))
            out.append(_BARS[min(idx, len(_BARS) - 1)])
    return "".join(out)
