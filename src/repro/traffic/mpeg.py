"""MPEG-2 video modelling: GOP structure, Table-1 statistics, traces.

The paper's VBR workload is driven by real MPEG-2 video traces whose
per-sequence frame-size statistics it reports in Table 1 (max / min /
average image size in bits for seven sequences).  The traces themselves
are not available, and the OCR of the paper lost Table 1's numerals; this
module therefore

* records **reconstructed** per-sequence statistics calibrated to
  published MPEG-2 trace studies (30 fps sequences coding at roughly
  3–10 Mbps: high-motion sequences such as Flower Garden and Mobile
  Calendar at the top, head-and-shoulders material at the bottom), and
* generates **synthetic traces** with the paper's GOP structure
  (``IBBPBBPBBPBBPBB``) whose per-frame-type sizes follow clipped
  lognormal distributions calibrated so the generated max/min/average
  match the recorded statistics.

The simulator consumes only per-frame flit counts at 33 ms boundaries, so
matching the GOP periodicity (the I-frame bursts every 15 frames drive
router saturation in the paper's §5.2) and the marginal size statistics
reproduces the behaviour that matters.  See DESIGN.md §2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FrameKind",
    "GOP_PATTERN",
    "GOP_LENGTH",
    "FRAME_PERIOD_SECONDS",
    "SequenceStats",
    "SEQUENCE_STATS",
    "TYPE_SIZE_RATIOS",
    "TYPE_SIGMAS",
    "mean_type_sizes",
    "generate_trace",
    "trace_statistics",
    "trace_bitrate_bps",
    "save_trace_csv",
    "load_trace_csv",
]


class FrameKind(enum.IntEnum):
    """MPEG picture types."""

    I = 0
    P = 1
    B = 2


#: The paper's Group-Of-Pictures pattern: 15 frames, 1 I + 4 P + 10 B.
GOP_PATTERN = "IBBPBBPBBPBBPBB"
GOP_LENGTH = len(GOP_PATTERN)
_GOP_KINDS = np.array([FrameKind[ch] for ch in GOP_PATTERN], dtype=np.int64)
_COUNT_I = GOP_PATTERN.count("I")
_COUNT_P = GOP_PATTERN.count("P")
_COUNT_B = GOP_PATTERN.count("B")

#: One frame every 33 milliseconds (NTSC ~30 fps), per the paper.
FRAME_PERIOD_SECONDS = 33e-3


@dataclass(frozen=True)
class SequenceStats:
    """Frame-size statistics of one video sequence (Table 1 schema)."""

    name: str
    max_bits: int
    min_bits: int
    avg_bits: int

    def __post_init__(self) -> None:
        if not (0 < self.min_bits <= self.avg_bits <= self.max_bits):
            raise ValueError(
                f"{self.name}: need 0 < min <= avg <= max, got "
                f"{self.min_bits}/{self.avg_bits}/{self.max_bits}"
            )

    @property
    def avg_rate_bps(self) -> float:
        """Mean bit rate of the sequence at 30 fps."""
        return self.avg_bits / FRAME_PERIOD_SECONDS


#: Reconstructed Table 1.  The paper names these seven sequences; the
#: OCR dropped the numbers, so the values below are calibrated to typical
#: published MPEG-2 trace statistics (see module docstring).  High-motion
#: sequences (Flower Garden, Mobile Calendar, Football) have the largest
#: frames; the mean rates span roughly 3.5–10 Mbps.
SEQUENCE_STATS: dict[str, SequenceStats] = {
    "ayersroc": SequenceStats("ayersroc", 870_000, 18_000, 130_000),
    "hook": SequenceStats("hook", 760_000, 14_000, 115_000),
    "martin": SequenceStats("martin", 700_000, 12_000, 105_000),
    "flower_garden": SequenceStats("flower_garden", 1_250_000, 45_000, 310_000),
    "mobile_calendar": SequenceStats("mobile_calendar", 1_320_000, 50_000, 330_000),
    "table_tennis": SequenceStats("table_tennis", 1_000_000, 28_000, 215_000),
    "football": SequenceStats("football", 1_120_000, 35_000, 255_000),
}

#: Relative mean sizes of I : P : B pictures.  I frames are intra-coded
#: (largest); B frames borrow from both neighbours (smallest).  5:2.2:1
#: is a standard working ratio for MPEG-2 material.
TYPE_SIZE_RATIOS: dict[FrameKind, float] = {
    FrameKind.I: 5.0,
    FrameKind.P: 2.2,
    FrameKind.B: 1.0,
}

#: Lognormal sigma per type: motion makes P/B sizes more variable than I.
TYPE_SIGMAS: dict[FrameKind, float] = {
    FrameKind.I: 0.18,
    FrameKind.P: 0.35,
    FrameKind.B: 0.42,
}


def mean_type_sizes(stats: SequenceStats) -> dict[FrameKind, float]:
    """Per-type mean frame sizes consistent with the sequence average.

    Solves ``(nI*rI + nP*rP + nB*rB) * base = GOP_LENGTH * avg`` for the
    base size, then scales by the type ratios.
    """
    weight = (
        _COUNT_I * TYPE_SIZE_RATIOS[FrameKind.I]
        + _COUNT_P * TYPE_SIZE_RATIOS[FrameKind.P]
        + _COUNT_B * TYPE_SIZE_RATIOS[FrameKind.B]
    )
    base = GOP_LENGTH * stats.avg_bits / weight
    return {kind: base * ratio for kind, ratio in TYPE_SIZE_RATIOS.items()}


def generate_trace(
    stats: SequenceStats,
    num_gops: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Synthetic frame-size trace (bits per frame, display order).

    Each frame's size is lognormal around its type mean, clipped into
    ``[min_bits, max_bits]``, and the whole trace is rescaled so its mean
    matches ``stats.avg_bits`` exactly (clipping would otherwise bias it).
    """
    if num_gops <= 0:
        raise ValueError("num_gops must be positive")
    means = mean_type_sizes(stats)
    kinds = np.tile(_GOP_KINDS, num_gops)
    mu = np.array([means[FrameKind(k)] for k in kinds])
    sigma = np.array([TYPE_SIGMAS[FrameKind(k)] for k in kinds])
    # Lognormal with the requested mean: E[exp(N(m, s^2))] = exp(m + s^2/2).
    sizes = rng.lognormal(mean=np.log(mu) - sigma**2 / 2.0, sigma=sigma)
    sizes = np.clip(sizes, stats.min_bits, stats.max_bits)
    # Restore the exact sequence mean after clipping, then re-clip; one
    # pass is enough for the calibration tests' tolerance.
    sizes *= stats.avg_bits / sizes.mean()
    sizes = np.clip(sizes, stats.min_bits, stats.max_bits)
    return np.round(sizes).astype(np.int64)


def frame_kinds(num_frames: int) -> np.ndarray:
    """Picture type of each frame position (display order)."""
    reps = -(-num_frames // GOP_LENGTH)
    return np.tile(_GOP_KINDS, reps)[:num_frames]


def trace_statistics(trace_bits: np.ndarray) -> SequenceStats:
    """Measured max/min/avg of a trace, as a :class:`SequenceStats`."""
    return SequenceStats(
        "measured",
        int(trace_bits.max()),
        int(trace_bits.min()),
        int(round(float(trace_bits.mean()))),
    )


def trace_bitrate_bps(trace_bits: np.ndarray) -> float:
    """Mean bit rate of a trace at the 33 ms frame period."""
    return float(trace_bits.mean()) / FRAME_PERIOD_SECONDS


# ----------------------------------------------------------------------
# Trace file I/O
# ----------------------------------------------------------------------
#
# The paper drove its VBR workloads from real MPEG-2 trace files (frame
# sizes per 33 ms slot).  Users who have such traces — e.g. the public
# Rose/TU-Berlin trace archives use the same frames-per-line shape — can
# load them here and feed :class:`repro.traffic.VBRSource` directly.

_CSV_HEADER = "frame_index,frame_type,size_bits"


def save_trace_csv(path, trace_bits: np.ndarray) -> None:
    """Write a trace as CSV: ``frame_index,frame_type,size_bits``.

    Frame types follow the display-order GOP pattern.
    """
    trace_bits = np.asarray(trace_bits)
    if trace_bits.ndim != 1 or len(trace_bits) == 0:
        raise ValueError("trace must be a non-empty 1-D array")
    if (trace_bits <= 0).any():
        raise ValueError("frame sizes must be positive")
    kinds = frame_kinds(len(trace_bits))
    with open(path, "w", encoding="ascii") as fh:
        fh.write(_CSV_HEADER + "\n")
        for i, (kind, bits) in enumerate(zip(kinds, trace_bits)):
            fh.write(f"{i},{FrameKind(kind).name},{int(bits)}\n")


def load_trace_csv(path) -> np.ndarray:
    """Read a trace written by :func:`save_trace_csv` (bits per frame).

    Validates the header, contiguous frame indices, and positive sizes;
    the frame-type column is informational (sizes drive the simulator).
    """
    with open(path, "r", encoding="ascii") as fh:
        header = fh.readline().strip()
        if header != _CSV_HEADER:
            raise ValueError(
                f"bad trace header {header!r}; expected {_CSV_HEADER!r}"
            )
        sizes: list[int] = []
        for lineno, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            parts = line.split(",")
            if len(parts) != 3:
                raise ValueError(f"line {lineno + 2}: expected 3 columns")
            index, _kind, bits = parts
            if int(index) != len(sizes):
                raise ValueError(
                    f"line {lineno + 2}: frame index {index} out of order"
                )
            size = int(bits)
            if size <= 0:
                raise ValueError(f"line {lineno + 2}: non-positive size")
            sizes.append(size)
    if not sizes:
        raise ValueError("trace file contains no frames")
    return np.asarray(sizes, dtype=np.int64)
