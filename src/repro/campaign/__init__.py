"""Campaign orchestration: parallel experiment grids with result caching.

Every figure in the paper is a load sweep x arbiter x seed grid.  This
package turns such a grid into a declarative :class:`CampaignPlan`,
executes its points on a worker pool with per-point retry, and persists
each result in a content-addressed store so re-invoked or interrupted
campaigns resume from cache instead of recomputing.

Quickstart::

    from repro.campaign import (
        CampaignPlan, ResultStore, WorkloadSpec, run_campaign,
    )
    from repro.sim import RunControl, default_config

    plan = CampaignPlan.grid(
        "fig5-smoke", default_config(), arbiters=("coa", "wfa"),
        loads=(0.5, 0.7), seeds=(1, 2), workload=WorkloadSpec.cbr(),
        control=RunControl(cycles=4_000, warmup_cycles=800),
    )
    res = run_campaign(plan, jobs=4, store=ResultStore(".repro-store"))
    res.hits, res.misses, res.points_per_sec
"""

from .executor import (
    CampaignError,
    CampaignResult,
    PointOutcome,
    execute_point,
    run_campaign,
)
from .plan import (
    CODE_VERSION,
    CampaignPlan,
    PointSpec,
    WorkloadSpec,
    canonical_json,
    register_workload_kind,
)
from .progress import ProgressReporter
from .store import ResultStore, RunManifest, collect_provenance

__all__ = [
    "CODE_VERSION",
    "CampaignError",
    "CampaignPlan",
    "CampaignResult",
    "PointOutcome",
    "PointSpec",
    "ProgressReporter",
    "ResultStore",
    "RunManifest",
    "WorkloadSpec",
    "canonical_json",
    "collect_provenance",
    "execute_point",
    "register_workload_kind",
    "run_campaign",
]
