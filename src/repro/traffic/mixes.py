"""Workload construction: connection mixes bound to router ports.

This module turns traffic sources into *workloads*: sets of established
connections (each holding a VC and a bandwidth reservation on the router)
paired with their injection sources, plus the bookkeeping the experiment
harness needs (per-port offered load, per-class grouping for metrics).

Builders mirror the paper's §5 setup:

* :func:`build_cbr_workload` — a random mix of low / medium / high CBR
  connections with uniformly random destinations, filled per input port
  until a target offered load is reached (Fig. 5 workload).
* :func:`build_vbr_workload` — MPEG-2 streams drawn randomly from the
  seven Table-1 sequences, randomly aligned within a GOP time, under the
  SR or BB injection model (Figs. 8-9 workload).  All BB connections
  share one peak bandwidth sized by the largest frame in the workload.
* :func:`build_besteffort_workload` — Poisson background traffic for the
  extension benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..router.config import RouterConfig
from ..router.connection import Connection, TrafficClass
from ..router.router import MMRouter
from .base import InjectionSchedule, TrafficSource
from .besteffort import BestEffortSource
from .cbr import CBR_CLASSES, CBRSource
from .mpeg import GOP_LENGTH, SEQUENCE_STATS, generate_trace
from .vbr import VBRSource, trace_to_flits

__all__ = [
    "ConnectionLoad",
    "PortFeed",
    "Workload",
    "build_cbr_workload",
    "build_vbr_workload",
    "build_besteffort_workload",
]


@dataclass(frozen=True)
class ConnectionLoad:
    """One established connection and the source that drives it."""

    conn: Connection
    source: TrafficSource
    #: Metrics group ("low"/"medium"/"high", sequence name, ...).
    label: str


@dataclass(frozen=True)
class PortFeed:
    """Merged, time-sorted injection stream for one input port."""

    cycles: np.ndarray
    vcs: np.ndarray
    frame_ids: np.ndarray
    frame_last: np.ndarray

    def __len__(self) -> int:
        return len(self.cycles)


@dataclass
class Workload:
    """All connections of one experiment plus derived bookkeeping."""

    config: RouterConfig
    loads: list[ConnectionLoad] = field(default_factory=list)

    def add(self, item: ConnectionLoad) -> None:
        self.loads.append(item)

    # ------------------------------------------------------------------

    def offered_load(self, in_port: int) -> float:
        """Mean offered load on one input port (flits/cycle)."""
        return sum(
            item.source.mean_load()
            for item in self.loads
            if item.conn.in_port == in_port
        )

    def mean_offered_load(self) -> float:
        """Offered load averaged over input ports (the figures' x-axis)."""
        ports = self.config.num_ports
        return sum(self.offered_load(p) for p in range(ports)) / ports

    def label_of(self, conn_id: int) -> str:
        for item in self.loads:
            if item.conn.conn_id == conn_id:
                return item.label
        raise KeyError(f"connection {conn_id} not in workload")

    def labels_by_conn(self) -> dict[int, str]:
        return {item.conn.conn_id: item.label for item in self.loads}

    def connections(self) -> list[Connection]:
        return [item.conn for item in self.loads]

    def __len__(self) -> int:
        return len(self.loads)

    # ------------------------------------------------------------------

    def build_feeds(self, horizon: int, rng: np.random.Generator) -> list[PortFeed]:
        """Merge all sources into per-port, time-sorted injection arrays."""
        ports = self.config.num_ports
        parts: list[list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]] = [
            [] for _ in range(ports)
        ]
        for item in self.loads:
            sched: InjectionSchedule = item.source.schedule(horizon, rng)
            if len(sched) == 0:
                continue
            vcs = np.full(len(sched), item.conn.vc, dtype=np.int64)
            parts[item.conn.in_port].append(
                (sched.cycles, vcs, sched.frame_ids, sched.frame_last)
            )
        feeds: list[PortFeed] = []
        for port_parts in parts:
            if not port_parts:
                empty = np.zeros(0, dtype=np.int64)
                feeds.append(PortFeed(empty, empty, empty, np.zeros(0, dtype=bool)))
                continue
            cycles = np.concatenate([p[0] for p in port_parts])
            vcs = np.concatenate([p[1] for p in port_parts])
            frame_ids = np.concatenate([p[2] for p in port_parts])
            frame_last = np.concatenate([p[3] for p in port_parts])
            order = np.argsort(cycles, kind="stable")
            feeds.append(
                PortFeed(cycles[order], vcs[order], frame_ids[order], frame_last[order])
            )
        return feeds


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def _establish_random_dest(
    router: MMRouter,
    in_port: int,
    rng: np.random.Generator,
    traffic_class: TrafficClass,
    avg_slots: int,
    peak_slots: int | None = None,
):
    """Try random output ports until admission accepts; None if none fit."""
    dests = rng.permutation(router.config.num_ports)
    for dest in dests:
        result = router.establish(
            in_port, int(dest), traffic_class, avg_slots, peak_slots
        )
        if result.accepted:
            return result.connection
    return None


#: Default draw probabilities of the CBR classes ("random mix").
DEFAULT_CBR_MIX: dict[str, float] = {"low": 0.2, "medium": 0.4, "high": 0.4}


def build_cbr_workload(
    router: MMRouter,
    target_load: float,
    rng: np.random.Generator,
    class_mix: dict[str, float] | None = None,
    load_tolerance: float = 0.005,
) -> Workload:
    """Fill every input port with a random CBR mix up to ``target_load``.

    Draws connection classes with the ``class_mix`` probabilities, skipping
    classes whose rate no longer fits in the remaining deficit, so the
    achieved offered load lands within roughly one low-class rate of the
    target.  Connections that admission rejects on every output are
    dropped (near 100 % load the random destinations stop fitting, as in
    any measured admission-controlled system).
    """
    if not (0 < target_load <= 1.0):
        raise ValueError("target_load must be in (0, 1]")
    mix = dict(DEFAULT_CBR_MIX if class_mix is None else class_mix)
    if not mix:
        raise ValueError("class_mix must not be empty")
    for name in mix:
        if name not in CBR_CLASSES:
            raise ValueError(f"unknown CBR class {name!r}")
    config = router.config
    workload = Workload(config)
    class_loads = {
        name: CBR_CLASSES[name].rate_bps / config.link_rate_bps for name in mix
    }
    for port in range(config.num_ports):
        deficit = target_load
        while deficit > load_tolerance:
            viable = {n: w for n, w in mix.items() if class_loads[n] <= deficit}
            if not viable:
                break
            names = list(viable)
            weights = np.array([viable[n] for n in names], dtype=np.float64)
            weights /= weights.sum()
            name = names[int(rng.choice(len(names), p=weights))]
            rate = CBR_CLASSES[name].rate_bps
            avg_slots = config.rate_to_slots(rate)
            conn = _establish_random_dest(
                router, port, rng, TrafficClass.CBR, avg_slots
            )
            if conn is None:
                break
            source = CBRSource.from_class(config, name, rng)
            workload.add(ConnectionLoad(conn, source, name))
            deficit -= class_loads[name]
    return workload


def build_vbr_workload(
    router: MMRouter,
    target_load: float,
    rng: np.random.Generator,
    model: str = "SR",
    frame_time_cycles: int = 2500,
    bandwidth_scale: float = 8.0,
    num_gops: int = 4,
    sequences: list[str] | None = None,
) -> Workload:
    """Fill every input port with MPEG-2 streams up to ``target_load``.

    Sequences are drawn uniformly from ``sequences`` (default: all seven
    Table-1 sequences).  Each stream gets a fresh synthetic trace of
    ``num_gops`` GOPs, a random alignment within one GOP time, and a
    uniformly random admissible destination.  ``model`` selects SR or BB
    injection; under BB every connection shares the workload-wide peak
    bandwidth (largest frame / frame time), as the paper specifies.
    """
    if not (0 < target_load <= 1.0):
        raise ValueError("target_load must be in (0, 1]")
    config = router.config
    names = list(SEQUENCE_STATS if sequences is None else sequences)
    for name in names:
        if name not in SEQUENCE_STATS:
            raise ValueError(f"unknown MPEG sequence {name!r}")
    # Pass 1: draw streams per port until the offered load target is met.
    pending: list[tuple[int, str, np.ndarray]] = []  # (port, seq, flits)
    for port in range(config.num_ports):
        deficit = target_load
        guard = 0
        while guard < 10_000:
            guard += 1
            name = names[int(rng.integers(len(names)))]
            trace_bits = generate_trace(SEQUENCE_STATS[name], num_gops, rng)
            flits = trace_to_flits(trace_bits, config, frame_time_cycles, bandwidth_scale)
            load = float(flits.mean()) / frame_time_cycles
            if load > deficit:
                break
            pending.append((port, name, flits))
            deficit -= load
    # Pass 2: the BB peak is global (common to all connections).
    peak_flits = max((int(f.max()) for _p, _n, f in pending), default=1)
    workload = Workload(config)
    for port, name, flits in pending:
        mean_load = float(flits.mean()) / frame_time_cycles
        peak_load = float(flits.max()) / frame_time_cycles
        avg_slots = max(1, round(mean_load * config.round_cycles))
        peak_slots = max(avg_slots, round(peak_load * config.round_cycles))
        conn = _establish_random_dest(
            router, port, rng, TrafficClass.VBR, avg_slots, peak_slots
        )
        if conn is None:
            continue
        # Random alignment within a GOP time (paper §5.2): rotate the
        # frame sequence by a random frame count and offset the first
        # boundary within one frame time, so every stream is active from
        # cycle 0 but the GOP phases (I-frame instants) are spread out.
        rot = int(rng.integers(GOP_LENGTH))
        source = VBRSource(
            np.roll(flits, -rot),
            frame_time_cycles,
            model=model,
            peak_flits_per_frame=peak_flits if model == "BB" else None,
            phase_cycles=int(rng.integers(frame_time_cycles)),
        )
        workload.add(ConnectionLoad(conn, source, name))
    return workload


def build_besteffort_workload(
    router: MMRouter,
    load_per_port: float,
    rng: np.random.Generator,
    mean_packet_flits: float = 8.0,
    sources_per_port: int = 4,
) -> Workload:
    """Background best-effort traffic (extension benches)."""
    if sources_per_port <= 0:
        raise ValueError("sources_per_port must be positive")
    config = router.config
    workload = Workload(config)
    per_source = load_per_port / sources_per_port
    for port in range(config.num_ports):
        for _ in range(sources_per_port):
            conn = _establish_random_dest(
                router, port, rng, TrafficClass.BEST_EFFORT, avg_slots=1
            )
            if conn is None:
                continue
            source = BestEffortSource(per_source, mean_packet_flits)
            workload.add(ConnectionLoad(conn, source, "best-effort"))
    return workload
