"""Smoke tests: the lightweight example scripts must run end to end.

The two simulation-heavy examples (quickstart, mpeg_vbr_qos) take tens
of seconds and are exercised by the benches' equivalent experiments;
here we run the fast ones plus the network extension demo as real
subprocesses, exactly as a user would.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_selection_matrix_demo():
    out = run_example("selection_matrix_demo.py")
    assert "conflict" in out.lower()
    assert "Final matching" in out
    assert "grant" in out


def test_admission_and_setup():
    out = run_example("admission_and_setup.py")
    assert "ACCEPTED" in out
    assert "rejected" in out
    assert "no free virtual channel" in out
    assert "peak reservation" in out


def test_multirouter_network():
    out = run_example("multirouter_network.py")
    assert "PCS path" in out
    assert "Every injected flit was delivered" in out


def test_trace_debugging():
    out = run_example("trace_debugging.py")
    assert "departure" in out
    # Priority order: the 100-slot connection departs first.
    assert "cycle 1: input 0 (100 slots/round)" in out


@pytest.mark.parametrize("name", [
    "quickstart.py", "mpeg_vbr_qos.py",
])
def test_heavy_examples_importable(name):
    """The heavy examples must at least compile (full runs are covered by
    the equivalent benches)."""
    source = (EXAMPLES / name).read_text()
    compile(source, name, "exec")
